"""Socket transport for the WorkerPool protocol: remote LPQ workers.

This module takes the one step ROADMAP left open after PR 4: jobs
already cross the pool boundary as plain-JSON wire payloads
(:func:`repro.spec.wire.encode_job`), so here those payloads cross a
TCP socket instead of a process-pool pipe.  Three pieces:

* :class:`WorkerServer` — a long-lived standalone worker: accepts
  client connections, verifies the token handshake, registers job
  payloads, and evaluates candidate chunks against lazily-built
  replicas (exactly the :class:`~repro.serve.SharedProcessPool` worker
  loop, behind a socket).  ``scripts/run_worker.py`` is its CLI.
* :class:`SharedRemotePool` — the client side of the
  :class:`~repro.serve.WorkerPool` protocol: connects to a fleet of
  workers, streams :class:`~repro.serve.ChunkResult` messages back to
  the scheduler's queue as they complete, heartbeats every connection,
  and requeues the in-flight chunks of a dead worker onto the
  survivors (evaluation is deterministic and side-effect-free, so a
  re-run chunk returns bit-identical fitness values).
* :class:`RemoteExecutor` — the single-search adapter that makes
  ``ExecutorConfig(backend="remote", addresses=[...])`` work through
  :func:`repro.quant.lpq_quantize` unchanged.

Framing is the length-prefixed JSON of :mod:`repro.spec.wire`
(:func:`~repro.spec.wire.frame_message` / ``read_frame``); every
message schema is built by that module's ``*_message`` constructors, so
client and worker cannot drift apart.  The transport inherits the
stack-wide invariant: moving a chunk to another host cannot move a bit
(``tests/serve/test_remote.py`` asserts remote ≡ serial bitwise, fleet
kills included).

A complete round trip on one machine (``local_worker_fleet`` starts
in-process servers; production workers run ``scripts/run_worker.py``):

>>> import numpy as np
>>> from repro.parallel import ExecutorConfig
>>> from repro.quant import LPQConfig, lpq_quantize
>>> from repro.serve.remote import local_worker_fleet
>>> from repro.spec import CalibSpec, SearchSpec
>>> spec = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
...                   config=LPQConfig(population=3, passes=1, cycles=1,
...                                    diversity_parents=2,
...                                    hw_widths=(4, 8), seed=5))
>>> serial = lpq_quantize(spec=spec)
>>> with local_worker_fleet(2) as addresses:
...     remote = lpq_quantize(spec=SearchSpec.from_dict(
...         {**spec.to_dict(),
...          "executor": {"backend": "remote", "addresses": addresses}}))
>>> remote.solution == serial.solution and remote.fitness == serial.fitness
True
"""

from __future__ import annotations

import contextlib
import hmac
import itertools
import queue
import socket
import threading
import time
import traceback
import warnings

from ..obs import MetricsEmitter, get_hub
from ..parallel import EvaluatorSpec, ExecutorConfig, parse_address
from ..perf import PerfRegistry
from ..spec import registry as spec_registry
from ..spec.blob import BlobStore, get_blob_store
from ..spec.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WIRE_VERSION,
    FrameCorruptionError,
    blob_get_message,
    blob_put_message,
    collect_blob_refs,
    decode_job,
    decode_solution,
    draining_message,
    error_message,
    frame_message,
    hello_message,
    job_message,
    metrics_message,
    read_frame,
    result_message,
    task_message,
    welcome_message,
)
from .pool import (
    ChunkResult,
    WorkerPool,
    _build_entry,
    _evaluate_with_entry,
    encode_pool_wires,
)
from .resilience import RetryPolicy

__all__ = [
    "WorkerServer",
    "SharedRemotePool",
    "RemoteExecutor",
    "local_worker_fleet",
]

#: default client heartbeat interval (seconds between pings)
HEARTBEAT_S = 2.0

#: handshake must complete within this many seconds on both ends — a
#: client talking to a wrong port, or a port-scanner talking to a
#: worker, times out cleanly instead of hanging either side
HANDSHAKE_TIMEOUT_S = 10.0

#: a worker evaluating a task blocks at most this long for a missing
#: blob to arrive from the client before failing that task
BLOB_FETCH_TIMEOUT_S = 30.0

#: drain sentinel on a session's task queue: every task enqueued before
#: it has been evaluated (FIFO), so the session may close cleanly
_DRAIN = object()


def _send_frame(sock: socket.socket, lock: threading.Lock,
                message: dict) -> None:
    """Frame and send one message; serialized per socket so concurrent
    senders (submitter, heartbeat) cannot interleave bytes."""
    data = frame_message(message)
    with lock:
        sock.sendall(data)


# -- the worker (server side) --------------------------------------------
class _WorkerSession(threading.Thread):
    """One accepted client connection on a :class:`WorkerServer`.

    The reader thread (this thread) stays responsive — it answers pings
    and enqueues tasks — while a dedicated evaluator thread works
    through the task queue, so liveness checks succeed even mid-chunk.
    Job replicas are session-scoped: two clients registering the same
    job name cannot collide.
    """

    def __init__(self, server: "WorkerServer", sock: socket.socket,
                 peer) -> None:
        super().__init__(daemon=True, name=f"repro-worker-{peer}")
        self.server = server
        self.sock = sock
        self.peer = peer
        self._send_lock = threading.Lock()
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._wires: dict[str, dict] = {}
        self._entries: dict[str, tuple] = {}
        self._blob_lock = threading.Lock()
        #: digest → set by the reader thread when its blob_put arrives;
        #: the evaluator thread waits on these for fetch-on-miss
        self._blob_events: dict[str, threading.Event] = {}
        self._closed = False
        #: test hook (:meth:`WorkerServer.silence`): swallow every
        #: frame, answer nothing — a hung worker as the client sees it
        self.muted = False

    # -- plumbing --------------------------------------------------------
    def _send(self, message: dict) -> None:
        _send_frame(self.sock, self._send_lock, message)

    def send_raw(self, data: bytes) -> None:
        """Send pre-framed bytes verbatim (the chaos harness uses this
        to put a deliberately checksum-corrupt frame on the wire)."""
        with self._send_lock:
            self.sock.sendall(data)

    def close(self) -> None:
        self._closed = True
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self.sock.close()

    # -- handshake + message loop ----------------------------------------
    def run(self) -> None:
        try:
            self.sock.settimeout(HANDSHAKE_TIMEOUT_S)
            rfile = self.sock.makefile("rb")
            if not self._handshake(rfile):
                return
            self.sock.settimeout(None)
            evaluator = threading.Thread(
                target=self._evaluate_loop, daemon=True,
                name=f"{self.name}-eval",
            )
            evaluator.start()
            try:
                self._read_loop(rfile)
            finally:
                self._tasks.put(None)  # unblock the evaluator thread
        except (OSError, ValueError):
            pass  # connection died or stream corrupt: session over
        finally:
            self.close()
            self.server._session_done(self)

    def _handshake(self, rfile) -> bool:
        message = read_frame(rfile, self.server.max_frame)
        if message is None or message.get("type") != "hello":
            self._send(error_message("expected hello frame"))
            return False
        if message.get("protocol") != PROTOCOL_VERSION:
            self._send(error_message(
                f"protocol version mismatch: client speaks "
                f"{message.get('protocol')!r}, worker speaks "
                f"{PROTOCOL_VERSION}; upgrade the older build"
            ))
            self.server._log(
                f"refused {self.peer}: protocol "
                f"{message.get('protocol')!r} != {PROTOCOL_VERSION}"
            )
            return False
        if message.get("version") != WIRE_VERSION:
            self._send(error_message(
                f"unsupported wire version {message.get('version')!r} "
                f"(worker speaks {WIRE_VERSION})"
            ))
            return False
        if not self.server._token_ok(message.get("token")):
            self.server.auth_failures += 1
            self._send(error_message("bad auth token"))
            self.server._log(f"refused {self.peer}: bad auth token")
            return False
        self._send(welcome_message(capacity=1))
        self.server._log(f"accepted {self.peer}")
        return True

    def _read_loop(self, rfile) -> None:
        while not self._closed:
            message = read_frame(rfile, self.server.max_frame)
            if message is None:
                return  # clean EOF: client went away
            if self.muted:
                continue  # hung-host simulation: read, never react
            kind = message.get("type")
            if kind == "job":
                self._wires[message["job"]] = message["payload"]
                self._request_job_blobs(message["payload"])
            elif kind == "blob_put":
                self._receive_blob(message)
            elif kind == "task":
                self.server._task_received()
                self._tasks.put(message)
            elif kind == "ping":
                self._send({"type": "pong", "t": message.get("t")})
            elif kind == "bye":
                # a departing client gets the telemetry tail before EOF:
                # one final delta sample, so even a pool window shorter
                # than the sampling interval sees the work it dispatched
                self.server._flush_metrics()
                return
            else:
                self._send(error_message(f"unknown frame type {kind!r}"))
                return

    # -- blob transport --------------------------------------------------
    def _blob_event(self, digest: str) -> threading.Event:
        with self._blob_lock:
            return self._blob_events.setdefault(digest, threading.Event())

    def _request_job_blobs(self, payload: dict) -> None:
        """Diff a registered job's blob refs against the server store and
        ask the client for what is missing, acking what is already cached
        (warm-fleet acks are how the client counts ``bytes_saved``)."""
        refs = collect_blob_refs(payload)
        if not refs:
            return
        missing = self.server.blobs.missing(refs)
        cached = sorted(set(refs) - set(missing))
        self._send(blob_get_message(missing, cached))

    def _receive_blob(self, message: dict) -> None:
        from ..spec.serde import decode_array

        self.server.blobs.put(decode_array(message["payload"]))
        # wake any fetch waiting on the *claimed* digest; the waiter
        # re-checks the store, so a corrupt payload fails loudly there
        self._blob_event(message["digest"]).set()

    def _fetch_blob(self, digest: str):
        """Fetch-on-miss hook for :func:`repro.spec.wire.decode_job`:
        ask the client for one blob and block (evaluator thread only)
        until the reader thread has stored it."""
        with self._blob_lock:
            event = self._blob_events.get(digest)
            if event is None or event.is_set():
                # a set event is stale (its blob has since left the
                # store, e.g. after a cache drop): wait on a fresh one
                event = threading.Event()
                self._blob_events[digest] = event
        self._send(blob_get_message([digest]))
        if not event.wait(timeout=BLOB_FETCH_TIMEOUT_S):
            raise RuntimeError(
                f"timed out waiting for blob {digest!r} from the client"
            )
        return self.server.blobs.get(digest)

    # -- evaluation ------------------------------------------------------
    def _evaluate_loop(self) -> None:
        while True:
            message = self._tasks.get()
            if message is None or self._closed:
                return
            if message is _DRAIN:
                # every chunk accepted before the drain signal has been
                # evaluated (the queue is FIFO); closing the socket now
                # makes the client requeue anything that raced in later
                self.close()
                return
            self.server._task_started()
            chaos = self.server.chaos
            events = chaos.on_task(self.server) if chaos is not None else ()
            if events and chaos.apply_task_events(self.server, self, events):
                continue  # the fault consumed this task (kill/disconnect)
            result = self._evaluate(message)
            if self.muted:
                continue  # hung-host simulation: compute, never reply
            if events and chaos.apply_result_events(self, events, result):
                continue  # the fault already handled (or ate) the send
            try:
                self._send(result)
            except (OSError, ValueError):
                return  # client gone; the pool requeues this chunk

    def _evaluate(self, message: dict) -> dict:
        task, job = message["task"], message["job"]
        seq, chunk = message["seq"], message["chunk"]
        start = time.perf_counter()
        try:
            entry = self._entries.get(job)
            if entry is None:
                wire = self._wires.get(job)
                if wire is None:
                    raise RuntimeError(
                        f"job {job!r} was never registered on this worker"
                    )
                entry = _build_entry(
                    decode_job(wire, blobs=self.server.blobs,
                               fetch=self._fetch_blob),
                    copy_model=False,
                )
                self._entries[job] = entry
            solutions = [decode_solution(rows)
                         for rows in message["solutions"]]
            fits, delta = _evaluate_with_entry(entry, solutions)
            # telemetry only: fold the same delta the client will merge
            # into the worker's own registry, so the live metrics stream
            # reconciles with the end-of-job snapshot.  The result frame
            # is built before the accounting touches anything.
            reply = result_message(
                task, job, seq, chunk, fits, delta,
                time.perf_counter() - start,
            )
            self.server._task_done(delta, len(solutions))
            return reply
        except Exception:  # lint: disable=broad-except -- worker boundary: any evaluation failure becomes an error result frame
            self.server._task_done(None, 0)
            return result_message(
                task, job, seq, chunk, None, None,
                time.perf_counter() - start, error=traceback.format_exc(),
            )


class WorkerServer:
    """A standalone LPQ evaluation worker behind a TCP socket.

    Long-lived: serves any number of client connections (sequentially
    or concurrently), each with its own session-scoped job replicas.
    ``port=0`` binds an ephemeral port — read it back from
    :attr:`address`.  ``token`` (optional) is a shared secret every
    client must echo in its hello frame; mismatches are refused before
    any payload is decoded.

    The worker keeps a *server-level* :class:`~repro.spec.blob.BlobStore`
    (:attr:`blobs`): content-addressed tensors survive across client
    sessions, so a warm fleet acks re-registered blob refs instead of
    re-fetching them.  ``blob_cache`` optionally backs the store with a
    memory-mapped on-disk cache directory — a restarted worker rehydrates
    its blobs from disk with zero network traffic.

    Production workers run ``scripts/run_worker.py``; tests and
    single-host fleets may embed the server in-process via
    :func:`local_worker_fleet`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        max_frame: int = MAX_FRAME_BYTES,
        verbose: bool = False,
        blob_cache=None,
        metrics_interval: float = 0.0,
        perf=None,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.max_frame = max_frame
        self.verbose = verbose
        self.blobs = BlobStore(cache_dir=blob_cache)
        #: worker-level telemetry registry — private by default so an
        #: in-process fleet's samples are not polluted by (or polluting)
        #: the host process's ambient registry
        self.perf = perf if perf is not None else PerfRegistry()
        #: sampling interval for the live metrics stream; 0 = off
        self.metrics_interval = float(metrics_interval)
        self._emitter: MetricsEmitter | None = None
        self.auth_failures = 0
        #: tasks accepted off the socket / begun evaluating / finished
        #: (test hooks; received - done is the live queue-depth gauge)
        self.tasks_received = 0
        self.tasks_started = 0
        self.tasks_done = 0
        self.task_started_event = threading.Event()
        #: optional fault-injection controller (:mod:`repro.serve.chaos`)
        self.chaos = None
        #: session threads that survived :meth:`stop`'s join timeout —
        #: tracked and surfaced instead of silently abandoned
        self.leaked_sessions: list = []
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._sessions: set[_WorkerSession] = set()
        self._lock = threading.Lock()
        self._closed = False
        self._draining = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "WorkerServer":
        listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"repro-worker-accept-{self.port}",
        )
        self._accept_thread.start()
        if self.metrics_interval > 0:
            self._emitter = MetricsEmitter(
                self.perf, self._broadcast_metrics, self.metrics_interval,
                source=f"worker:{self.address}",
                gauges=self._metrics_gauges,
            )
            self._emitter.start()
        self._log(f"listening on {self.address}")
        return self

    @property
    def address(self) -> str:
        """``host:port`` as clients should dial it."""
        return f"{self.host}:{self.port}"

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            session = _WorkerSession(self, sock, peer)
            with self._lock:
                if self._closed:
                    session.close()
                    return
                self._sessions.add(session)
            session.start()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, close every session.

        A session thread that outlives the join timeout is *leaked*:
        it is recorded in :attr:`leaked_sessions`, logged, and surfaced
        as a ``RuntimeWarning`` — never silently abandoned.
        """
        self._closed = True
        if self._emitter is not None:
            # flush one final sample to still-open sessions before they
            # close, so short jobs never lose their telemetry tail
            self._emitter.stop()
            self._emitter = None
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.close()
        for session in sessions:
            session.join(timeout=5)
        leaked = [s for s in sessions if s.is_alive()]
        if leaked:
            self.leaked_sessions.extend(leaked)
            names = [s.name for s in leaked]
            self._log(f"leaked {len(leaked)} session thread(s): {names}")
            warnings.warn(
                f"WorkerServer.stop: {len(leaked)} session thread(s) "
                f"still running after the join timeout: {names}",
                RuntimeWarning, stacklevel=2,
            )

    def drain(self, wait: float = 30.0) -> None:
        """Graceful retirement (the SIGTERM path): stop accepting
        connections, tell every client this worker is leaving
        (``draining`` frame, so pools stop dispatching here), finish
        every chunk already accepted, then stop.

        Anything a client managed to send after the drain signal is
        requeued by that client when the socket closes — exactly one
        result per chunk still holds fleet-wide.
        """
        self._draining = True
        self._log("draining: refusing new work, finishing in-flight")
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            with contextlib.suppress(OSError, ValueError):
                session._send(draining_message())
            session._tasks.put(_DRAIN)
        deadline = time.monotonic() + wait
        for session in sessions:
            session.join(timeout=max(0.0, deadline - time.monotonic()))
        self.stop()

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining

    def kill(self) -> None:
        """Abrupt death (tests): drop every socket with no goodbye.
        Clients observe an EOF/reset, the loud half of worker death;
        for the quiet half — a hung host that stops responding without
        closing anything — see :meth:`silence`."""
        self.stop()

    def drop_caches(self) -> None:
        """Forget every cached blob and decoded job replica, as a
        restarted worker (without an on-disk blob cache) would have:
        the next task on any live session rebuilds its replica through
        the ``blob_get`` fetch-on-miss frames."""
        self.blobs.clear()
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            session._entries.clear()

    def silence(self) -> None:
        """Go silent without closing anything (tests): every session
        keeps its socket open but stops answering pings and sending
        results, as a hung or network-partitioned worker host would.
        Only the client's liveness timeout can detect this state."""
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.muted = True

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the ``run_worker.py`` main loop)."""
        while not self._closed:
            time.sleep(0.2)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- session callbacks ----------------------------------------------
    def _token_ok(self, token) -> bool:
        if self.token is None:
            return True
        return isinstance(token, str) and hmac.compare_digest(
            token, self.token
        )

    def _task_received(self) -> None:
        with self._lock:
            self.tasks_received += 1

    def _task_started(self) -> None:
        with self._lock:
            self.tasks_started += 1
        self.task_started_event.set()

    def _task_done(self, delta: dict | None, evaluations: int) -> None:
        """Telemetry accounting for one evaluated chunk (success or
        failure).  Strictly passive: folds the chunk's perf delta into
        the worker-level registry and bumps the worker counters — the
        result frame the client merges is untouched."""
        with self._lock:
            self.tasks_done += 1
        self.perf.counter("worker.tasks").inc()
        if delta is not None:
            self.perf.merge_snapshot(delta)
            self.perf.counter("worker.evaluations").inc(evaluations)
        else:
            self.perf.counter("worker.task_errors").inc()

    def _metrics_gauges(self) -> dict:
        with self._lock:
            received = self.tasks_received
            done = self.tasks_done
            sessions = len(self._sessions)
        return {
            "queue_depth": max(0, received - done),
            "sessions": sessions,
            "tasks_received": received,
            "tasks_done": done,
            "draining": self._draining,
        }

    def _flush_metrics(self) -> None:
        """Emit one out-of-band sample right now (no-op with telemetry
        off; :meth:`MetricsEmitter.sample` never raises).  Invoked when
        a client says ``bye`` so short-lived pools — a scheduler round
        can outrun the sampling interval — still receive every delta."""
        emitter = self._emitter
        if emitter is not None:
            emitter.sample()

    def _broadcast_metrics(self, sample: dict) -> None:
        """Emitter sink: push one sample to every connected client as a
        ``metrics`` frame.  Best-effort by design — a dead or muted
        session drops the sample, never the worker."""
        frame = metrics_message(
            sample["source"], sample["seq"], sample["t"],
            delta=sample["delta"], gauges=sample["gauges"],
        )
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            if session.muted:
                continue
            with contextlib.suppress(OSError, ValueError):
                session._send(frame)

    def _session_done(self, session: _WorkerSession) -> None:
        with self._lock:
            self._sessions.discard(session)

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[worker {self.port}] {message}", flush=True)


@contextlib.contextmanager
def local_worker_fleet(count: int, token: str | None = None,
                       verbose: bool = False,
                       metrics_interval: float = 0.0):
    """Start ``count`` in-process :class:`WorkerServer`\\ s on ephemeral
    localhost ports; yields their ``host:port`` addresses.

    The servers run real sockets — everything except process isolation
    matches a multi-host fleet — which is what the tests, doctests, and
    ``run_search_throughput_bench.py --backend remote`` use.
    """
    servers = [
        WorkerServer(token=token, verbose=verbose,
                     metrics_interval=metrics_interval).start()
        for _ in range(count)
    ]
    try:
        yield [server.address for server in servers]
    finally:
        for server in servers:
            server.stop()


# -- the pool (client side) ----------------------------------------------
class _RemoteWorker:
    """Client-side state for one worker connection."""

    def __init__(self, address: str, sent_counter=None) -> None:
        self.address = address
        self.sock: socket.socket | None = None
        self.send_lock = threading.Lock()
        self.reader: threading.Thread | None = None
        self.alive = False
        #: cleared by a ``draining`` frame: the worker is finishing its
        #: in-flight chunks but must not be handed anything new
        self.accepting = True
        self.capacity = 1
        self.pending: set[int] = set()  # task ids in flight here
        self.last_recv = time.monotonic()
        #: latest ping→pong round trip in milliseconds (telemetry only)
        self.rtt_ms: float | None = None
        #: pool-supplied ``transport.bytes_sent`` counter (optional)
        self.sent_counter = sent_counter

    def send(self, message: dict) -> None:
        data = frame_message(message)
        if self.sent_counter is not None:
            self.sent_counter.inc(len(data))
        with self.send_lock:
            self.sock.sendall(data)

    def drop(self) -> None:
        self.alive = False
        if self.sock is not None:
            with contextlib.suppress(OSError):
                self.sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                self.sock.close()


class _Task:
    """One submitted chunk, tracked until exactly one result returns.

    ``attempts`` counts requeues (worker deaths / expired deadlines
    while this chunk was in flight) against the retry budget;
    ``sent_at`` is the monotonic timestamp of the latest dispatch, the
    clock the per-chunk deadline runs on.
    """

    __slots__ = ("task", "job", "seq", "chunk", "solutions", "attempts",
                 "sent_at")

    def __init__(self, task: int, job: str, seq: int, chunk: int,
                 solutions) -> None:
        self.task = task
        self.job = job
        self.seq = seq
        self.chunk = chunk
        self.solutions = solutions
        self.attempts = 0
        self.sent_at: float | None = None


class SharedRemotePool(WorkerPool):
    """Socket-backed :class:`~repro.serve.WorkerPool`: a fleet of
    :class:`WorkerServer` workers behind one submit queue.

    On :meth:`start` the pool dials every address, performs the
    token/version handshake, and registers the full ``job → wire
    payload`` table on each worker (workers build replicas lazily on
    their first task per job, exactly like the shared process pool).
    Chunks go to the live worker with the fewest in-flight tasks, and
    results stream back to the caller's queue the moment each worker
    finishes — completion order never matters because every
    :class:`~repro.serve.ChunkResult` carries its ``(job, seq, chunk)``
    tag.

    **Liveness.**  A heartbeat thread pings every worker; a worker
    whose socket errors, EOFs, sends a checksum-corrupt frame, or goes
    silent past the liveness timeout is declared dead, and every chunk
    in flight on it is requeued onto the survivors on the
    :class:`~repro.serve.resilience.RetryPolicy` backoff schedule
    (deterministic evaluation makes the re-run bit-identical; task-id
    dedupe makes redelivery impossible).  When the last worker dies,
    outstanding chunks resolve per ``on_fleet_death``: ``"fail"``
    (default) delivers error results so the scheduler fails those jobs
    cleanly rather than blocking forever; ``"local"`` evaluates them on
    an in-process fallback evaluator — slower, but bitwise-identical.

    **Elasticity.**  The fleet is not static: dead addresses are
    re-dialed on the same deterministic backoff, so a restarted worker
    rejoins mid-search and immediately receives a rebalanced share of
    the in-flight load; :meth:`add_worker` / :meth:`remove_worker`
    grow and shrink the fleet at runtime; a worker announcing a drain
    (SIGTERM) finishes its chunks but is handed nothing new.  A chunk
    whose workers keep dying under it (a *poison chunk*) is quarantined
    after ``retry.max_attempts`` requeues and evaluated locally,
    flagged by the ``fault.quarantines`` counter, instead of cascading
    through the fleet.  Every recovery action increments a ``fault.*``
    counter in :attr:`perf`.
    """

    def __init__(
        self,
        wires: dict[str, dict],
        addresses,
        results: queue.SimpleQueue,
        token: str | None = None,
        connect_timeout: float = HANDSHAKE_TIMEOUT_S,
        heartbeat_s: float = HEARTBEAT_S,
        liveness_timeout_s: float | None = None,
        blobs: BlobStore | None = None,
        perf=None,
        retry: RetryPolicy | None = None,
        on_fleet_death: str = "fail",
    ) -> None:
        if not addresses:
            raise ValueError("SharedRemotePool requires at least one address")
        if on_fleet_death not in ("fail", "local"):
            raise ValueError(
                f"on_fleet_death must be 'fail' or 'local', got "
                f"{on_fleet_death!r}"
            )
        self.wires = dict(wires)
        self.addresses = [str(a) for a in addresses]
        self.token = token
        self.retry = retry if retry is not None else RetryPolicy()
        self.on_fleet_death = on_fleet_death
        # the policy may override the transport's timing defaults so a
        # committed spec file fully pins recovery behaviour
        if self.retry.heartbeat_s is not None:
            heartbeat_s = self.retry.heartbeat_s
        if self.retry.liveness_timeout_s is not None:
            liveness_timeout_s = self.retry.liveness_timeout_s
        #: the store the wires were encoded against; answers blob_get
        self._blobs = blobs
        #: digest → the encoded ref payload it appears as in the wires
        self._blob_refs = collect_blob_refs(self.wires)
        if perf is None:
            from ..perf import get_perf

            perf = get_perf()
        self.perf = perf
        self.connect_timeout = connect_timeout
        self.heartbeat_s = heartbeat_s
        # a worker that has sent nothing — results, pongs, anything —
        # for this long is declared dead even though its socket never
        # errored (hung host, dropped network); generous by default
        # because the worker's reader answers pings even mid-chunk
        self.liveness_timeout = (
            liveness_timeout_s
            if liveness_timeout_s is not None
            else max(10.0, heartbeat_s * 5)
        )
        self._results = results
        self._workers: list[_RemoteWorker] = []
        self._pending: dict[int, _Task] = {}
        self._task_ids = itertools.count()
        self._lock = threading.Lock()
        self._heartbeat: threading.Thread | None = None
        self._closed = False
        #: set by close() so the heartbeat thread wakes immediately
        #: instead of sleeping out its full interval
        self._closing = threading.Event()
        #: address → [failed-redial count, next-attempt monotonic time]
        self._redial: dict[str, list] = {}
        #: chunks parked while the fleet is momentarily empty but a
        #: redial may still revive it (only with retry.fleet_wait_s > 0)
        self._parked: list[_Task] = []
        self._fleet_down_since: float | None = None
        #: lazily-started in-process fallback evaluator (quarantined
        #: poison chunks, on_fleet_death="local" degradation)
        self._local_queue: queue.SimpleQueue = queue.SimpleQueue()
        self._local_thread: threading.Thread | None = None
        self._local_lock = threading.Lock()
        #: transport threads that outlived close()'s join timeouts
        self.leaked_threads: list[str] = []

    # -- WorkerPool surface ----------------------------------------------
    @property
    def workers(self) -> int:
        """Live, accepting worker capacity (minimum 1 so chunk-count
        arithmetic in the scheduler stays well-defined while the fleet
        collapses; draining workers no longer count)."""
        with self._lock:
            live = sum(
                w.capacity for w in self._workers
                if w.alive and w.accepting
            )
        return max(1, live)

    def healthy(self) -> bool:
        with self._lock:
            return any(w.alive for w in self._workers)

    def start(self) -> "SharedRemotePool":
        try:
            for address in self.addresses:
                self._workers.append(self._connect(address))
        except Exception:
            # a partial fleet must not leak: drop every connection made
            # so far (their reader threads exit on the closed sockets)
            for worker in self._workers:
                worker.drop()
            raise
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, daemon=True,
            name="repro-remote-heartbeat",
        )
        self._heartbeat.start()
        return self

    def submit(self, job: str, seq: int, chunk: int, solutions) -> None:
        entry = _Task(next(self._task_ids), job, seq, chunk, list(solutions))
        with self._lock:
            self._pending[entry.task] = entry
        self._dispatch(entry)

    def close(self) -> None:
        self._closed = True
        self._closing.set()
        with self._lock:
            workers = list(self._workers)
            parked, self._parked = self._parked, []
        for entry in parked:
            self._fail_task(entry, "pool closed while the fleet was down")
        byed: list[_RemoteWorker] = []
        for worker in workers:
            if worker.alive:
                with contextlib.suppress(OSError, ValueError):
                    worker.send({"type": "bye"})
                    byed.append(worker)
        # a live worker answers ``bye`` with one final telemetry sample
        # and closes its end; keep the sockets readable briefly so the
        # reader threads deliver that tail before the hard drop (a hung
        # worker just spends the shared deadline, then is dropped)
        deadline = time.monotonic() + 1.0
        for worker in byed:
            if worker.reader is not None:
                worker.reader.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
        for worker in workers:
            worker.drop()
        if self._local_thread is not None:
            self._local_queue.put(None)
            self._local_thread.join(timeout=10)
        leaked: list[str] = []
        for worker in workers:
            if worker.reader is not None:
                worker.reader.join(timeout=5)
                if worker.reader.is_alive():
                    leaked.append(worker.reader.name)
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=self.heartbeat_s + 5)
            if self._heartbeat.is_alive():
                leaked.append(self._heartbeat.name)
        if self._local_thread is not None and self._local_thread.is_alive():
            leaked.append(self._local_thread.name)
        if leaked:
            # surface the leak instead of abandoning the threads: the
            # counter makes it visible in bench records, the warning in
            # test logs and operator consoles
            self.leaked_threads.extend(leaked)
            self.perf.counter("fault.leaked_threads").inc(len(leaked))
            warnings.warn(
                f"SharedRemotePool.close: {len(leaked)} transport "
                f"thread(s) did not exit within the join timeout: "
                f"{leaked}",
                RuntimeWarning, stacklevel=2,
            )

    # -- elastic membership ----------------------------------------------
    def add_worker(self, address: str) -> bool:
        """Grow the fleet at runtime: dial ``address``, register the
        full job table, and rebalance in-flight load onto the joiner.

        Returns ``True`` on an immediate join; ``False`` if the worker
        is not reachable *yet* — the address is then kept on the redial
        schedule, so a worker that comes up later joins on its own.
        """
        address = str(address)
        parse_address(address)
        with self._lock:
            if address not in self.addresses:
                self.addresses.append(address)
        try:
            worker = self._connect(address)
        except ConnectionError:
            with self._lock:
                self._redial.setdefault(address, [0, 0.0])
            return False
        self._admit(worker, rejoin=False)
        return True

    def remove_worker(self, address: str) -> None:
        """Shrink the fleet at runtime: retire every connection to
        ``address`` (its in-flight chunks are requeued onto the rest of
        the fleet) and stop re-dialing it."""
        address = str(address)
        with self._lock:
            if address in self.addresses:
                self.addresses.remove(address)
            self._redial.pop(address, None)
            targets = [
                w for w in self._workers
                if w.address == address and w.alive
            ]
        for worker in targets:
            with contextlib.suppress(OSError, ValueError):
                worker.send({"type": "bye"})
            self._worker_died(worker)

    def _admit(self, worker: _RemoteWorker, rejoin: bool) -> None:
        """Install a freshly-connected worker: replace any dead record
        for its address, release parked chunks, rebalance load."""
        with self._lock:
            self._workers = [
                w for w in self._workers
                if w.alive or w.address != worker.address
            ]
            self._workers.append(worker)
            self._redial.pop(worker.address, None)
        if rejoin:
            self.perf.counter("fault.rejoins").inc()
        self._flush_parked()
        self._rebalance(worker)

    # -- connection management -------------------------------------------
    def _connect(self, address: str) -> _RemoteWorker:
        host, port = parse_address(address)
        worker = _RemoteWorker(
            address, sent_counter=self.perf.counter("transport.bytes_sent")
        )
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach worker {address}: {exc}"
            ) from exc
        worker.sock = sock
        # one buffered reader for the connection's whole life: the
        # handshake reply and every later frame come off the same
        # buffer, so no read-ahead byte can be stranded
        rfile = sock.makefile("rb")
        try:
            worker.send(hello_message(self.token))
            reply = read_frame(rfile)
        except (OSError, ValueError) as exc:
            worker.drop()
            raise ConnectionError(
                f"handshake with worker {address} failed: {exc}"
            ) from exc
        if reply is None or reply.get("type") != "welcome":
            detail = (reply or {}).get("error", "connection closed")
            worker.drop()
            raise ConnectionError(
                f"worker {address} refused the handshake: {detail}"
            )
        if reply.get("protocol") != PROTOCOL_VERSION:
            worker.drop()
            raise ConnectionError(
                f"worker {address} speaks protocol "
                f"{reply.get('protocol')!r}, this client speaks "
                f"{PROTOCOL_VERSION}; upgrade the older build"
            )
        sock.settimeout(None)
        worker.capacity = max(1, int(reply.get("capacity", 1)))
        worker.alive = True
        worker.last_recv = time.monotonic()
        # the full job table rides every connection so any worker can
        # pick up any job's chunks (that is what makes requeue possible)
        for job, payload in self.wires.items():
            worker.send(job_message(job, payload))
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker, rfile), daemon=True,
            name=f"repro-remote-read-{address}",
        )
        worker.reader.start()
        return worker

    def _read_loop(self, worker: _RemoteWorker, rfile) -> None:
        try:
            while worker.alive:
                message = read_frame(rfile)
                if message is None:
                    break
                worker.last_recv = time.monotonic()
                kind = message.get("type")
                if kind == "result":
                    self._handle_result(worker, message)
                elif kind == "blob_get":
                    self._handle_blob_get(worker, message)
                elif kind == "draining":
                    # the worker is retiring (SIGTERM): it will finish
                    # what it holds, but gets nothing new
                    worker.accepting = False
                    self.perf.counter("fault.drains").inc()
                elif kind == "metrics":
                    self._handle_metrics(worker, message)
                elif kind == "pong":
                    t = message.get("t")
                    if isinstance(t, (int, float)):
                        worker.rtt_ms = max(
                            0.0, time.monotonic() * 1000 - t
                        )
                elif kind == "error":
                    break  # worker declared the connection unusable
                # anything else: the timestamp update above is all the
                # liveness machinery needs
        except FrameCorruptionError:
            # a corrupt frame demotes the worker cleanly: count it,
            # drop the connection, requeue its chunks elsewhere
            self.perf.counter("fault.checksum_rejects").inc()
        except (OSError, ValueError):
            pass
        self._worker_died(worker)

    def _heartbeat_loop(self) -> None:
        while not self._closed:
            if self._closing.wait(self.heartbeat_s):
                return
            if self._closed:
                return
            now = time.monotonic()
            with self._lock:
                workers = [w for w in self._workers if w.alive]
            for worker in workers:
                if now - worker.last_recv > self.liveness_timeout:
                    self._worker_died(worker)
                    continue
                try:
                    worker.send({"type": "ping", "t": int(now * 1000)})
                except (OSError, ValueError):
                    self._worker_died(worker)
            self._check_deadlines(now)
            self._redial_pass(now)
            self._check_parked(now)

    # -- elastic recovery passes (heartbeat thread) -----------------------
    def _check_deadlines(self, now: float) -> None:
        """Requeue chunks in flight longer than the policy deadline —
        a stalled worker should not hold a chunk hostage for the whole
        liveness window.  The late duplicate, if it ever arrives, is
        dropped by task-id dedupe."""
        deadline = self.retry.deadline_s
        if deadline is None:
            return
        stale: list[_Task] = []
        with self._lock:
            for worker in self._workers:
                if not worker.alive:
                    continue
                for task in list(worker.pending):
                    entry = self._pending.get(task)
                    if entry is None:
                        worker.pending.discard(task)
                        continue
                    if entry.sent_at is not None \
                            and now - entry.sent_at > deadline:
                        worker.pending.discard(task)
                        stale.append(entry)
        for entry in stale:
            self.perf.counter("fault.deadline_requeues").inc()
            self._requeue(entry)

    def _redial_pass(self, now: float) -> None:
        """Re-dial every configured address with no live connection,
        each on its own deterministic backoff schedule — a restarted
        worker rejoins the fleet mid-search."""
        if self._closed:
            return
        due: list[tuple[str, list]] = []
        with self._lock:
            for address in self.addresses:
                if any(
                    w.alive for w in self._workers if w.address == address
                ):
                    continue
                state = self._redial.setdefault(address, [0, 0.0])
                if now >= state[1]:
                    due.append((address, state))
        for address, state in due:
            state[0] += 1
            self.perf.counter("fault.redials").inc()
            try:
                worker = self._connect(address)
            except (ConnectionError, OSError, ValueError):
                state[1] = time.monotonic() + self.retry.backoff(
                    state[0], key=address
                )
                continue
            self._admit(worker, rejoin=True)

    def _check_parked(self, now: float) -> None:
        """Release parked chunks once a worker is back, or fail them
        once the fleet has been down longer than ``fleet_wait_s``."""
        with self._lock:
            if not self._parked:
                return
            down_since = self._fleet_down_since
            has_live = any(
                w.alive and w.accepting for w in self._workers
            )
        if has_live:
            self._flush_parked()
        elif down_since is not None \
                and now - down_since > self.retry.fleet_wait_s:
            with self._lock:
                parked, self._parked = self._parked, []
                self._fleet_down_since = None
            for entry in parked:
                self._fail_task(
                    entry,
                    f"fleet down for more than "
                    f"{self.retry.fleet_wait_s}s with no rejoin",
                )

    def _flush_parked(self) -> None:
        with self._lock:
            parked, self._parked = self._parked, []
            self._fleet_down_since = None
        for entry in parked:
            self._dispatch(entry)

    def _rebalance(self, worker: _RemoteWorker) -> None:
        """Move excess in-flight chunks from loaded workers onto a
        joiner.  Safe by construction: the donor may still deliver a
        moved chunk, and task-id dedupe keeps whichever copy lands
        first (both are bitwise-identical)."""
        moves: list[_Task] = []
        with self._lock:
            others = [
                w for w in self._workers
                if w.alive and w.accepting and w is not worker
            ]
            if not others:
                return
            total = len(worker.pending) + sum(
                len(w.pending) for w in others
            )
            target = -(-total // (len(others) + 1))  # ceil
            for other in sorted(others, key=lambda w: -len(w.pending)):
                while (
                    len(other.pending) > target
                    and len(worker.pending) < target
                ):
                    task = max(other.pending)
                    other.pending.discard(task)
                    entry = self._pending.get(task)
                    if entry is None:
                        continue
                    worker.pending.add(task)
                    moves.append(entry)
        for entry in moves:
            try:
                worker.send(task_message(
                    entry.task, entry.job, entry.seq, entry.chunk,
                    entry.solutions,
                ))
                entry.sent_at = time.monotonic()
            except (OSError, ValueError):
                # every move (sent or not) is in worker.pending, so the
                # death sweep requeues them all — nothing is stranded
                self._worker_died(worker)
                return
        if moves:
            self.perf.counter("fault.rebalanced").inc(len(moves))

    # -- telemetry forwarding ---------------------------------------------
    def _handle_metrics(self, worker: _RemoteWorker, message: dict) -> None:
        """Forward one worker telemetry sample upstream: enrich it with
        what only this side knows (in-flight chunk count, heartbeat
        round trip) and publish to the process-ambient
        :class:`~repro.obs.MetricsHub`, where the daemon's fleet
        merger — or any other subscriber — picks it up.  Passive: a bad
        sample is dropped, never raised into the reader loop."""
        try:
            sample = {
                "source": str(message.get("source")
                              or f"worker:{worker.address}"),
                "seq": int(message.get("seq") or 0),
                "t": float(message.get("t") or 0.0),
                "delta": message.get("delta") or {},
                "gauges": dict(message.get("gauges") or {}),
            }
            sample["gauges"]["pending"] = len(worker.pending)
            if worker.rtt_ms is not None:
                sample["gauges"]["heartbeat_ms"] = round(worker.rtt_ms, 3)
        except (TypeError, ValueError):
            return
        get_hub().publish(sample)

    def membership(self) -> list[dict]:
        """Per-worker fleet facts for status views (advisory only)."""
        with self._lock:
            return [
                {
                    "address": w.address,
                    "alive": w.alive,
                    "accepting": w.accepting,
                    "pending": len(w.pending),
                    "heartbeat_ms": w.rtt_ms,
                }
                for w in self._workers
            ]

    # -- blob transport --------------------------------------------------
    def _handle_blob_get(self, worker: _RemoteWorker, message: dict) -> None:
        """Answer a worker's blob diff: push every missing blob inline
        (``blob_put``) and credit the acked-cached ones — base64 bytes a
        warm worker cache kept off the wire — to ``bytes_saved``."""
        from ..spec.serde import encode_array, inline_nbytes

        for digest in message.get("digests", ()):
            if self._blobs is None or digest not in self._blob_refs:
                continue  # unknown ref: the worker's fetch fails loudly
            try:
                array = self._blobs.get(digest)
            except KeyError:
                continue
            worker.send(blob_put_message(digest, encode_array(array)))
        saved = sum(
            inline_nbytes(self._blob_refs[digest])
            for digest in message.get("cached", ())
            if digest in self._blob_refs
        )
        if saved:
            self.perf.counter("transport.bytes_saved").inc(saved)

    # -- dispatch / results ----------------------------------------------
    def _pick_worker(self) -> _RemoteWorker | None:
        with self._lock:
            live = [
                w for w in self._workers if w.alive and w.accepting
            ]
            if not live:
                return None
            return min(live, key=lambda w: len(w.pending) / w.capacity)

    def _dispatch(self, entry: _Task) -> None:
        """Send one tracked task to some live worker, failing over until
        it is accepted or no workers remain."""
        while True:
            worker = self._pick_worker()
            if worker is None:
                self._handle_no_workers(entry)
                return
            with self._lock:
                # re-check under the lock: _worker_died may have swept
                # this worker's pending set since _pick_worker — adding
                # to it now would strand the task (never requeued, so
                # the scheduler would wait on its ChunkResult forever)
                if not worker.alive:
                    continue
                worker.pending.add(entry.task)
            try:
                worker.send(task_message(
                    entry.task, entry.job, entry.seq, entry.chunk,
                    entry.solutions,
                ))
                entry.sent_at = time.monotonic()
                return
            except (OSError, ValueError):
                with self._lock:
                    worker.pending.discard(entry.task)
                self._worker_died(worker)

    def _handle_no_workers(self, entry: _Task) -> None:
        """Dispatch found an empty fleet: degrade per policy — run the
        chunk locally, park it for a rejoin, or fail it fast."""
        if self._closed:
            self._fail_task(entry, "pool closed")
            return
        if self.on_fleet_death == "local":
            self.perf.counter("fault.fallbacks").inc()
            self._run_local(entry)
            return
        if self.retry.fleet_wait_s > 0:
            with self._lock:
                if self._fleet_down_since is None:
                    self._fleet_down_since = time.monotonic()
                self._parked.append(entry)
            self.perf.counter("fault.parked").inc()
            return
        self._fail_task(entry, "no live remote workers remain")

    def _requeue(self, entry: _Task) -> None:
        """Charge one failure against a chunk's retry budget, then
        either quarantine it (poison chunk → local evaluation) or
        re-dispatch on the policy's deterministic backoff."""
        entry.attempts += 1
        self.perf.counter("fault.retries").inc()
        if self.retry.exhausted(entry.attempts):
            # this chunk has now taken down max_attempts workers in a
            # row: quarantine it — evaluate locally, flagged by the
            # counter — rather than let it cascade through the fleet
            self.perf.counter("fault.quarantines").inc()
            self._run_local(entry)
            return
        delay = self.retry.backoff(entry.attempts, key=f"task{entry.task}")
        if delay > 0.001 and not self._closed:
            timer = threading.Timer(delay, self._dispatch, args=(entry,))
            timer.daemon = True
            timer.start()
        else:
            self._dispatch(entry)

    def _handle_result(self, worker: _RemoteWorker, message: dict) -> None:
        with self._lock:
            task = message.get("task")
            # always unburden the delivering worker — a duplicate
            # delivery after a requeue must not leave a stale id
            # inflating its load forever
            worker.pending.discard(task)
            entry = self._pending.pop(task, None)
        if entry is None:
            # duplicate delivery after a requeue/rebalance: drop (both
            # copies are bitwise-identical, the first one won)
            self.perf.counter("fault.duplicate_results").inc()
            return
        self._results.put(ChunkResult(
            job=message["job"],
            seq=message["seq"],
            chunk=message["chunk"],
            fits=message.get("fits"),
            perf_delta=message.get("perf_delta"),
            elapsed=float(message.get("elapsed", 0.0)),
            error=message.get("error"),
        ))

    def _fail_task(self, entry: _Task, reason: str) -> None:
        with self._lock:
            still_pending = self._pending.pop(entry.task, None) is not None
        if still_pending:
            self._results.put(ChunkResult(
                entry.job, entry.seq, entry.chunk, None, None, 0.0,
                error=f"remote pool: {reason}",
            ))

    def _worker_died(self, worker: _RemoteWorker) -> None:
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            orphans = [
                self._pending[task]
                for task in sorted(worker.pending)
                if task in self._pending
            ]
            worker.pending.clear()
            if not self._closed and worker.address in self.addresses:
                # schedule the first redial of this address: a worker
                # restarted behind the same host:port rejoins mid-search
                state = self._redial.setdefault(worker.address, [0, 0.0])
                state[1] = time.monotonic() + self.retry.backoff(
                    state[0] + 1, key=worker.address
                )
        worker.drop()
        if self._closed:
            return
        if orphans:
            self.perf.counter("fault.requeues").inc(len(orphans))
        for entry in orphans:
            self._requeue(entry)

    # -- local fallback evaluator ----------------------------------------
    def _run_local(self, entry: _Task) -> None:
        """Queue a chunk for the in-process fallback evaluator (lazily
        started): quarantined poison chunks and on_fleet_death="local"
        degradation both land here.  Evaluation reuses the exact
        worker-side replica machinery, so the result is bitwise what a
        remote worker would have produced."""
        with self._local_lock:
            if self._local_thread is None:
                self._local_thread = threading.Thread(
                    target=self._local_loop, daemon=True,
                    name="repro-remote-local-fallback",
                )
                self._local_thread.start()
        self._local_queue.put(entry)

    def _local_loop(self) -> None:
        entries: dict[str, tuple] = {}
        while True:
            entry = self._local_queue.get()
            if entry is None:
                return
            start = time.perf_counter()
            try:
                built = entries.get(entry.job)
                if built is None:
                    built = _build_entry(
                        decode_job(self.wires[entry.job], blobs=self._blobs),
                        copy_model=False,
                    )
                    entries[entry.job] = built
                fits, delta = _evaluate_with_entry(built, entry.solutions)
                result = ChunkResult(
                    entry.job, entry.seq, entry.chunk, fits, delta,
                    time.perf_counter() - start,
                )
            except Exception:  # lint: disable=broad-except -- local-fallback boundary: failures become error ChunkResults
                result = ChunkResult(
                    entry.job, entry.seq, entry.chunk, None, None,
                    time.perf_counter() - start,
                    error=traceback.format_exc(),
                )
            with self._lock:
                delivered = self._pending.pop(entry.task, None)
            if delivered is not None:
                self._results.put(result)
            else:
                # a remote worker beat the fallback to it (identical
                # payload): count the duplicate, deliver nothing
                self.perf.counter("fault.duplicate_results").inc()


# -- single-search adapter ------------------------------------------------
class RemoteExecutor:
    """Remote backend for single-search executors
    (:func:`repro.parallel.make_executor`).

    Adapts one :class:`~repro.parallel.EvaluatorSpec` onto a
    :class:`SharedRemotePool` with a single job: ``evaluate_batch``
    submits one chunk per candidate (matching the process backend's
    ``chunksize=1`` dispatch), reassembles results by chunk tag, and
    merges worker perf deltas in submission order — so
    ``lpq_quantize(..., executor=ExecutorConfig("remote",
    addresses=[...]))`` is bitwise-identical to the serial backend.
    """

    _JOB = "job0"

    def __init__(self, spec: EvaluatorSpec, config: ExecutorConfig,
                 perf) -> None:
        self.perf = perf
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        # encode against the process-global blob store: a spec
        # re-submitted to a warm fleet dedupes its tensors (blob hits
        # client-side, cached acks worker-side)
        blobs = get_blob_store()
        self._pool = SharedRemotePool(
            encode_pool_wires({self._JOB: spec}, blobs=blobs),
            config.addresses,
            self._results,
            token=config.token,
            blobs=blobs,
            perf=perf,
            retry=config.retry,
            on_fleet_death=config.on_fleet_death,
        ).start()
        self._seq = itertools.count()

    @property
    def workers(self) -> int:
        return self._pool.workers

    def evaluate_batch(self, solutions) -> list[float]:
        solutions = list(solutions)
        seq = next(self._seq)
        for idx, solution in enumerate(solutions):
            self._pool.submit(self._JOB, seq, idx, [solution])
        chunks: dict[int, ChunkResult] = {}
        while len(chunks) < len(solutions):
            result = self._results.get()
            if result.seq != seq:
                continue  # stale result of a batch that already raised
            chunks[result.chunk] = result
        fits = []
        for idx in range(len(solutions)):
            result = chunks[idx]
            if result.error is not None:
                raise RuntimeError(
                    f"remote evaluation failed:\n{result.error}"
                )
            self.perf.merge_snapshot(result.perf_delta)
            fits.extend(result.fits)
        return fits

    def close(self) -> None:
        self._pool.close()


# the socket transport is the fourth shared-pool backend; the serial /
# thread / process factories live in repro.serve.pool
def _make_shared_remote_pool(specs, config, results, search_specs):
    blobs = get_blob_store()
    return SharedRemotePool(
        encode_pool_wires(specs, search_specs, blobs=blobs),
        config.addresses,
        results,
        token=config.token,
        blobs=blobs,
        retry=config.retry,
        on_fleet_death=config.on_fleet_death,
    )


spec_registry.register("shared_pool", "remote", _make_shared_remote_pool)
