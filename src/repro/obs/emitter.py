"""Interval sampler turning a live PerfRegistry into a delta stream.

A :class:`MetricsEmitter` wraps one :class:`~repro.perf.PerfRegistry`
and, on a fixed interval, publishes the snapshot *delta* since its
previous sample (:func:`~repro.perf.diff_snapshots`) together with
point-in-time gauges supplied by the host (queue depth, session count,
draining flag...).  Deltas — not absolutes — are what make fleet-wide
merging truthful: the daemon can fold many sources into one registry
with :meth:`~repro.perf.PerfRegistry.merge_snapshot` and every event is
counted exactly once.

Passivity contract: the emitter only *reads* the registry (snapshotting
is lock-protected since the concurrent-mutation fix in
:mod:`repro.perf.counters`), emission failures are swallowed, and
``interval_s <= 0`` disables the thread entirely — so enabling
telemetry can never move a bit of a search result.

>>> from repro.perf import PerfRegistry
>>> reg = PerfRegistry()
>>> samples = []
>>> emitter = MetricsEmitter(reg, samples.append, interval_s=0.0,
...                          source="worker:demo",
...                          gauges=lambda: {"queue_depth": 2})
>>> emitter.enabled  # 0 = off: no sampler thread will start
False
>>> reg.counter("worker.evaluations").inc(5)
>>> emitter.sample()  # manual one-shot sampling still works
>>> samples[0]["source"], samples[0]["seq"]
('worker:demo', 0)
>>> samples[0]["delta"]["counters"]
{'worker.evaluations': 5}
>>> samples[0]["gauges"]
{'queue_depth': 2}
>>> reg.counter("worker.evaluations").inc()
>>> emitter.sample()
>>> samples[1]["delta"]["counters"]  # deltas, not absolutes
{'worker.evaluations': 1}
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..perf import PerfRegistry, diff_snapshots

__all__ = ["MetricsEmitter"]


class MetricsEmitter:
    """Sample ``registry`` every ``interval_s`` and hand each delta to
    ``emit``.

    ``emit`` receives one plain-dict sample per tick:
    ``{"source", "seq", "t", "delta", "gauges"}`` — the payload half of
    :func:`repro.spec.wire.metrics_message`.  ``gauges`` is an optional
    zero-arg callable evaluated at each tick.  ``start`` launches a
    daemon thread (a no-op when disabled); ``stop`` flushes one final
    sample so short-lived hosts never lose their tail.
    """

    def __init__(self, registry: PerfRegistry, emit: Callable[[dict], None],
                 interval_s: float, source: str,
                 gauges: Callable[[], dict] | None = None) -> None:
        self.registry = registry
        self.interval_s = float(interval_s)
        self.source = str(source)
        self._emit = emit
        self._gauges = gauges
        self._seq = 0
        self._last_snapshot: dict = {"counters": {}, "timers": {}, "caches": {}}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._sample_lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.interval_s > 0

    def start(self) -> None:
        if not self.enabled or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"metrics-emitter[{self.source}]",
            daemon=True,
        )
        self._thread.start()

    def stop(self, flush: bool = True) -> None:
        """Stop the sampler thread; by default emit one final sample."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if flush:
            self.sample()

    def sample(self) -> None:
        """Take one sample now and emit it.  Never raises."""
        with self._sample_lock:
            snapshot = self.registry.snapshot()
            delta = diff_snapshots(snapshot, self._last_snapshot)
            self._last_snapshot = snapshot
            sample = {
                "source": self.source,
                "seq": self._seq,
                "t": time.time(),
                "delta": delta,
                "gauges": self._read_gauges(),
            }
            self._seq += 1
        try:
            self._emit(sample)
        except Exception:  # lint: disable=broad-except -- telemetry passivity: a broken sink must not touch the host
            pass  # passive: a broken sink must not touch the host

    def _read_gauges(self) -> dict:
        if self._gauges is None:
            return {}
        try:
            return dict(self._gauges())
        except Exception:  # lint: disable=broad-except -- telemetry passivity: a failing gauge reads as absent
            return {}

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()
