"""Persisted fleet telemetry: append-only, torn-tail-safe sample log.

A :class:`TimeSeriesStore` is the :class:`repro.serve.store.Journal`
idiom applied to telemetry: one JSON sample per line, appends flushed
before returning, an unterminated tail (a crash mid-append) truncated
on open and tolerated on replay.  The daemon appends one merged fleet
sample per emitter tick, so a perf regression shows up as a trajectory
(evals/s over the run, cache hit rate decaying, fault counters
stepping) rather than a single end-of-run ``BENCH_*.json`` number.

Telemetry is advisory where the journal is authoritative: appends are
flushed but *not* fsynced by default (pass ``fsync=True`` to harden),
and a corrupt mid-file line is skipped with a counter rather than
raised — losing a sample must never take down a daemon.

>>> import os, tempfile
>>> from repro.perf import PerfRegistry
>>> root = tempfile.mkdtemp()
>>> store = TimeSeriesStore(os.path.join(root, "timeseries.jsonl"))
>>> _ = store.append({"source": "server:demo", "seq": 0,
...                   "delta": {"counters": {"worker.evaluations": 7}}})
>>> _ = store.append({"source": "server:demo", "seq": 1, "delta": {}})
>>> [s["seq"] for s in store.replay()]
[0, 1]
>>> store.close()
>>> with open(store.path, "ab") as fh:      # crash tears the tail...
...     _ = fh.write(b'{"source": "server:demo", "se')
>>> [s["seq"] for s in store.replay()]      # ...complete samples survive
[0, 1]
>>> merged = merge_samples(store.replay())  # fold deltas back together
>>> merged["counters"]["worker.evaluations"]
7
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path

from ..perf import PerfRegistry, get_perf

__all__ = ["TimeSeriesStore", "merge_samples"]

#: sample record format version (stamped into every line)
TIMESERIES_VERSION = 1


class TimeSeriesStore:
    """Append-only JSONL log of telemetry samples with torn-tail recovery.

    Samples are the :class:`repro.obs.MetricsEmitter` dicts (or the
    daemon's merged fleet samples); each is stamped with a ``v`` format
    version on write.  ``append`` is flushed (fsynced only with
    ``fsync=True``); ``replay`` returns every readable sample, counting
    skipped lines in ``obs.torn_tails`` and appends in ``obs.samples``.
    """

    def __init__(self, path, perf=None, fsync: bool = False) -> None:
        self.path = Path(path)
        self.perf = perf if perf is not None else get_perf()
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None

    # -- writing ---------------------------------------------------------
    def append(self, sample: dict) -> dict:
        """Append one sample; returns the stamped record."""
        record = {"v": TIMESERIES_VERSION, **sample}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        fh = self._handle()
        fh.write(line + "\n")
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self.perf.counter("obs.samples").inc()
        return record

    def _handle(self):
        if self._fh is None:
            # same recovery as Journal._handle: truncate an unterminated
            # tail before appending, so the torn record never becomes a
            # complete-but-corrupt mid-file line
            if self.path.exists() and self.path.stat().st_size:
                with open(self.path, "rb") as fh:
                    data = fh.read()
                if not data.endswith(b"\n"):
                    keep = data.rfind(b"\n") + 1
                    with open(self.path, "r+b") as fh:
                        fh.truncate(keep)
                    self.perf.counter("obs.torn_tails").inc()
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def close(self) -> None:
        if self._fh is not None:
            with contextlib.suppress(OSError):
                self._fh.close()
            self._fh = None

    # -- reading ---------------------------------------------------------
    def replay(self) -> list[dict]:
        """Every readable sample, in append order.

        Unlike the job journal, *any* unparsable line is skipped (and
        counted in ``obs.torn_tails``) rather than raised: telemetry is
        advisory, and a single damaged sample must not make the whole
        trajectory unreadable.
        """
        if not self.path.exists():
            return []
        samples: list[dict] = []
        for line in self.path.read_bytes().split(b"\n"):
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("sample is not a JSON object")
            except (ValueError, UnicodeDecodeError):
                self.perf.counter("obs.torn_tails").inc()
                continue
            samples.append(record)
        return samples

    def __len__(self) -> int:
        return len(self.replay())


def merge_samples(samples) -> dict:
    """Fold any number of delta samples back into one cumulative
    snapshot (the inverse of the emitter's per-tick diffing): merge each
    sample's ``delta`` through a scratch
    :class:`~repro.perf.PerfRegistry`, exactly as the daemon folds
    worker deltas into its own registry."""
    registry = PerfRegistry()
    for sample in samples:
        registry.merge_snapshot(sample.get("delta") or {})
    return registry.snapshot()
