"""Process-ambient telemetry bus: publish worker samples, subscribe anywhere.

The transport layer (:class:`~repro.serve.remote.SharedRemotePool`)
receives per-worker ``metrics`` frames but is constructed through the
``shared_pool`` registry factory, whose signature carries no telemetry
sink.  Rather than thread a sink through every layer, the pool publishes
into the process-ambient :class:`MetricsHub` (:func:`get_hub`) and the
daemon subscribes — mirroring how :func:`repro.perf.get_perf` makes the
ambient perf registry available to hot paths.

Passivity contract: ``publish`` never raises (subscriber exceptions are
swallowed) and holds the hub lock only to copy the subscriber list, so
a slow or broken subscriber cannot stall the transport reader thread.

>>> hub = MetricsHub()
>>> seen = []
>>> unsubscribe = hub.subscribe(seen.append)
>>> hub.publish({"source": "worker:a", "seq": 0, "delta": {}})
>>> seen[0]["source"]
'worker:a'
>>> hub.latest()["worker:a"]["seq"]
0
>>> unsubscribe()
>>> hub.publish({"source": "worker:a", "seq": 1, "delta": {}})
>>> len(seen)
1
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["MetricsHub", "get_hub", "reset_hub"]


class MetricsHub:
    """Fan one stream of telemetry samples out to any number of readers.

    Samples are plain dicts (the :func:`repro.spec.wire.metrics_message`
    shape, minus the ``type`` tag).  The hub also keeps the latest
    sample per ``source`` so one-shot status queries need no
    subscription window.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[dict], None]] = []
        self._latest: dict[str, dict] = {}

    def subscribe(self, callback: Callable[[dict], None]) -> Callable[[], None]:
        """Register ``callback`` for every future sample; returns an
        idempotent unsubscribe."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(callback)
                except ValueError:
                    pass

        return unsubscribe

    def publish(self, sample: dict) -> None:
        """Deliver ``sample`` to every subscriber.  Never raises."""
        with self._lock:
            source = sample.get("source")
            if source is not None:
                self._latest[str(source)] = sample
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(sample)
            except Exception:  # lint: disable=broad-except -- telemetry passivity: a broken subscriber must not stall the publisher
                pass  # passive: a broken reader must not stall the writer

    def latest(self) -> dict[str, dict]:
        """Latest sample per source (a copy)."""
        with self._lock:
            return dict(self._latest)

    def clear(self) -> None:
        with self._lock:
            self._latest.clear()


#: process-ambient hub used by default across the serve stack
_GLOBAL = MetricsHub()


def get_hub() -> MetricsHub:
    """The process-ambient metrics hub."""
    return _GLOBAL


def reset_hub() -> MetricsHub:
    """Drop all subscribers and latest samples (test isolation)."""
    global _GLOBAL
    _GLOBAL = MetricsHub()
    return _GLOBAL
