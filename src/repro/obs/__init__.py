"""Live fleet telemetry (repro.obs).

:mod:`repro.perf` answers "where did the time go" *after* a run; this
package answers it *while* the fleet runs.  Four pieces, one pipeline:

* :class:`MetricsEmitter` — samples a :class:`~repro.perf.PerfRegistry`
  on an interval and publishes each snapshot *delta*
  (:func:`~repro.perf.diff_snapshots`) plus point-in-time gauges.
  Runs inside :class:`~repro.serve.remote.WorkerServer` and
  :class:`~repro.serve.server.SearchServer`.
* :class:`MetricsHub` — a process-ambient publish/subscribe bus
  (:func:`get_hub`) that carries worker samples from the transport
  layer (:class:`~repro.serve.remote.SharedRemotePool` forwards each
  worker's ``metrics`` frame into it) up to the daemon without any
  layer holding a reference to another.
* :class:`TimeSeriesStore` — journal-style, torn-tail-safe JSONL
  persistence of fleet samples, so perf regressions show up as
  trajectories rather than single end-of-run numbers.
* ``scripts/watch_fleet.py`` — the terminal watch view over a live
  daemon's ``subscribe_metrics`` stream and ``fleet_status`` snapshot.

The subsystem's invariant: telemetry is strictly *passive*.  Emitters
only read registries, publishing never blocks an evaluator, subscriber
errors are swallowed, and every bitwise-identity suite passes with
emission enabled at any interval.
"""

from .emitter import MetricsEmitter
from .hub import MetricsHub, get_hub, reset_hub
from .timeseries import TimeSeriesStore, merge_samples

__all__ = [
    "MetricsEmitter",
    "MetricsHub",
    "TimeSeriesStore",
    "get_hub",
    "merge_samples",
    "reset_hub",
]
