"""Shared incremental candidate-evaluation engine.

Both LPQ evaluators — :class:`repro.quant.fitness.FitnessEvaluator`
(the paper's global-local contrastive objective) and
:class:`repro.quant.objectives.OutputObjectiveEvaluator` (the Fig. 5(a)
final-output baselines) — score candidates the same way: install a
fake-quantized configuration, re-estimate BatchNorm statistics, run the
calibration batch forward, and turn what the pass produced into a loss
that is multiplied by the compression factor ``L_CR^λ``.

:class:`IncrementalEvaluator` holds the machinery that makes one such
evaluation incremental, independent of which measurement the subclass
extracts from the pass:

* a result memo keyed by the full candidate makes duplicates free;
* a :class:`~repro.quant.quantizer.WeightQuantCache` re-quantizes only
  layers whose parameters actually changed;
* an :class:`~repro.quant.quantizer.ActQuantCache` memoises quantized
  activations by input identity, so the first recomputed layer of a
  replayed pass skips ``lp_quantize`` when its input and activation
  parameters are unchanged;
* a prefix-reuse forward (:class:`repro.nn.ForwardCache`) replays cached
  activations up to the first changed layer and recomputes the suffix;
* BN recalibration is fused into the measurement pass: with momentum 1 a
  batch normalised by its own statistics in training mode is bit-for-bit
  what the eval pass would recompute (see
  :func:`repro.quant.quantizer.bn_batch_stats`).

Fast and reference paths produce bitwise-identical results; the engine
assumes frozen weights and falls back to the reference path for models
with active Dropout or a forward order that deviates from definition
order.

Every evaluator takes an optional private :class:`repro.perf.PerfRegistry`
so worker replicas in a parallel population fan-out
(:mod:`repro.parallel`) can account their cache traffic separately and
merge it back truthfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import (
    BatchNorm2d,
    Dropout,
    ForwardCache,
    Module,
    quantizable_layers,
    record_activations,
)
from ..perf import get_perf
from .params import QuantSolution

__all__ = ["FitnessConfig", "IncrementalEvaluator"]

#: memo-miss sentinel — a fitness of exactly 0.0 is legal (e.g. an MSE
#: objective on a bitwise-lossless candidate) and must still be memoized
_MISSING = object()


@dataclass(frozen=True)
class FitnessConfig:
    """Knobs of the fitness function; defaults follow the paper.

    ``fast`` toggles the incremental evaluation engine (quantized-weight
    cache, result memo, prefix-reuse forward passes, fused BN
    recalibration, activation-quant cache).  Fast and reference paths
    produce bitwise-identical fitness values; the flag exists for
    benchmarking and as an escape hatch.  ``weight_cache_entries`` bounds
    the quantized-weight LRU and ``act_cache_entries`` the quantized-
    activation LRU (entries pin activation tensors, so keep it small).
    """

    tau: float = 0.07  # concentration level of the contrastive loss
    lam: float = 0.4  # λ balancing L_CO and L_CR
    pooling: str = "kurtosis"  # "kurtosis" (paper) | "mean" (ablation)
    fast: bool = True  # incremental evaluation engine
    weight_cache_entries: int = 1024
    act_cache_entries: int = 64

    def to_dict(self) -> dict:
        """Plain-JSON dict form (used by :class:`repro.spec.SearchSpec`)."""
        from ..spec.serde import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FitnessConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        from ..spec.serde import config_from_dict

        return config_from_dict(cls, data)


def _has_active_dropout(model: Module) -> bool:
    return any(
        isinstance(m, Dropout) and m.p > 0 for _, m in model.named_modules()
    )


class IncrementalEvaluator:
    """Template for candidate evaluators with an incremental fast path.

    Subclasses define what a candidate *measurement* is by implementing:

    * ``_prepare_reference()`` — one-time FP baseline (runs in eval mode
      on the clean model during construction);
    * ``_reference_measurement()`` — full-pass measurement, called inside
      a ``quantized`` + ``bn_recalibrated`` context;
    * ``_suffix_record_names(suffix)`` — layer names whose activations
      the fast pass must record (empty when only the final output is
      needed);
    * ``_measurement_from_pass(acts, out, suffix)`` — measurement from a
      fast pass's recorded activations and final output;
    * ``_loss(measurement)`` — the objective factor; the engine then
      multiplies it by ``L_CR^λ``.

    ``timer_name``/``memo_name`` label the perf sections so both
    evaluators report uniformly; every concrete evaluator must set them
    to names declared in the docs/perf.md counter table.
    """

    timer_name: str
    memo_name: str

    def __init__(
        self,
        model: Module,
        calib_images: np.ndarray,
        param_counts: list[int],
        config: FitnessConfig | None = None,
        perf=None,
    ) -> None:
        from .quantizer import (
            ActQuantCache,
            WeightQuantCache,
            clear_quantization,
        )

        self.model = model
        self.images = calib_images
        self.param_counts = param_counts
        self.config = config or FitnessConfig()
        self._layers = quantizable_layers(model)
        self.layer_names = [n for n, _ in self._layers]
        clear_quantization(model)
        model.eval()
        #: evaluations requested (memo hits included)
        self.evaluations = 0
        #: evaluations that actually ran a forward pass (memo misses)
        self.computed_evaluations = 0
        self.perf = perf if perf is not None else get_perf()
        # -- incremental engine state ------------------------------------
        self.fast = self.config.fast and not _has_active_dropout(model)
        self._bns = [
            m for _, m in model.named_modules() if isinstance(m, BatchNorm2d)
        ]
        self._memo: dict = {}
        self._weight_cache = WeightQuantCache(
            self.config.weight_cache_entries,
            stats=self.perf.cache("quant.weight_cache"),
        )
        self._act_cache = ActQuantCache(
            self.config.act_cache_entries,
            stats=self.perf.cache("quant.act_cache"),
        )
        self._forward_cache = ForwardCache(model)
        self._ref_cfg: tuple | None = None
        self._prepare_reference()

    # -- subclass hooks ---------------------------------------------------
    def _prepare_reference(self) -> None:
        raise NotImplementedError

    def _reference_measurement(self):
        raise NotImplementedError

    def _suffix_record_names(self, suffix: range) -> list[str]:
        return []

    def _measurement_from_pass(self, acts: dict, out, suffix: range):
        raise NotImplementedError

    def _loss(self, measurement) -> float:
        raise NotImplementedError

    def _on_reset(self) -> None:
        """Subclass hook: invalidate measurement state on reset_caches."""

    # -- public API -------------------------------------------------------
    def __call__(self, solution: QuantSolution, act_params=None) -> float:
        from .fitness import compression_ratio

        if self.fast:
            key = (
                solution,
                None if act_params is None else tuple(act_params),
            )
            memo_stats = self.perf.cache(self.memo_name)
            cached = self._memo.get(key, _MISSING)
            if cached is not _MISSING:
                memo_stats.hit()
                self.evaluations += 1  # requested, but served from the memo
                return cached
            memo_stats.miss()
        with self.perf.timer(self.timer_name).time():
            if self.fast:
                measurement = self._measure_fast(solution, act_params)
            else:
                measurement = self._measure_reference(solution, act_params)
        self.evaluations += 1
        self.computed_evaluations += 1
        lcr = compression_ratio(solution, self.param_counts)
        fitness = self._loss(measurement) * lcr**self.config.lam
        if self.fast:
            self._memo[key] = fitness
        return fitness

    def evaluate_many(self, solutions, act_params_list=None) -> list[float]:
        """Evaluate a batch of candidates, results in submission order.

        Candidates not already memoized get their quantized weights
        prefilled through :meth:`prefill_weights` first — one stacked
        LUT pass per shared format instead of per-layer-per-candidate
        calls — then each candidate runs the usual (bitwise-identical)
        incremental path against a warm cache.  A
        :class:`repro.parallel.PopulationEvaluator` additionally fans
        the batch out across executor workers.
        """
        solutions = list(solutions)
        if act_params_list is None:
            act_params_list = [None] * len(solutions)
        self.prefill_weights(
            sol
            for sol, acts in zip(solutions, act_params_list)
            if not self.is_memoized(sol, acts)
        )
        return [
            self(sol, acts) for sol, acts in zip(solutions, act_params_list)
        ]

    def is_memoized(self, solution: QuantSolution, act_params=None) -> bool:
        """True when ``__call__`` would serve this candidate from the
        fitness memo (no stats side effects — pure lookup)."""
        if not self.fast:
            return False
        key = (solution, None if act_params is None else tuple(act_params))
        return key in self._memo

    def prefill_weights(self, solutions) -> int:
        """Warm the quantized-weight cache for a batch of candidates.

        All missing ``(layer, params)`` pairs across the batch are
        computed in one :meth:`WeightQuantCache.prefill` call, which
        groups them by clamped LP format and runs a single shared LUT
        ``searchsorted`` per group (``lp_quantize_many``).  Returns the
        number of cache entries computed; the
        ``population.prefill_entries`` counter tracks the same number.
        """
        if not self.fast:
            return 0
        pairs = [
            (layer, solution[i])
            for solution in solutions
            if len(solution) == len(self._layers)
            for i, (_, layer) in enumerate(self._layers)
        ]
        if not pairs:
            return 0
        computed = self._weight_cache.prefill(pairs)
        if computed:
            self.perf.counter("population.prefill_entries").inc(computed)
        return computed

    def reset_caches(self) -> None:
        """Invalidate all caches (required after mutating model weights)."""
        self._memo.clear()
        self._weight_cache.clear()
        self._act_cache.clear()
        self._forward_cache.invalidate()
        self._ref_cfg = None
        self._on_reset()

    # -- reference path ---------------------------------------------------
    def _measure_reference(self, solution, act_params):
        from .quantizer import bn_recalibrated, quantized

        with quantized(self.model, solution, act_params):
            # evaluate the candidate as it would be deployed: with BN
            # statistics re-estimated under the quantized weights
            with bn_recalibrated(self.model, self.images):
                return self._reference_measurement()

    # -- incremental engine ---------------------------------------------
    def _layer_config(self, solution, act_params) -> tuple:
        """Per-layer installed configuration: (weight params, input-side
        activation params) — exactly what apply_quantization installs."""
        return tuple(
            (
                solution[i],
                act_params[i - 1] if act_params is not None and i > 0 else None,
            )
            for i in range(len(self._layers))
        )

    def _first_diff(self, cfg: tuple) -> int | None:
        """Index of the first layer whose config differs from the cached
        reference candidate (None = identical)."""
        if self._ref_cfg is None or len(self._ref_cfg) != len(cfg):
            return 0
        for i, (a, b) in enumerate(zip(self._ref_cfg, cfg)):
            if a != b:
                return i
        return None

    def _measure_fast(self, solution, act_params):
        from .quantizer import apply_quantization, clear_quantization

        cfg = self._layer_config(solution, act_params)
        full = not self._forward_cache.primed or self._ref_cfg is None
        first = 0 if full else self._first_diff(cfg)
        apply_quantization(
            self.model,
            solution,
            act_params,
            cache=self._weight_cache,
            act_cache=self._act_cache,
        )
        try:
            if first is None:
                dirty, suffix = None, range(0)
            else:
                dirty = None if full else self._layers[first][1]
                suffix = range(first, len(self._layers))
            self.perf.counter("replay.layers_reused").inc(
                len(self._layers) - len(suffix)
            )
            suffix_names = self._suffix_record_names(suffix)
            if self._bns:
                acts, out = self._fused_recal_pass(dirty, suffix_names, full)
            else:
                self.model.eval()
                with record_activations(self.model, suffix_names) as acts:
                    if full:
                        out = self._forward_cache.forward(self.images)
                    else:
                        out = self._forward_cache.forward(
                            self.images, dirty=dirty
                        )
            if full and not self._forward_cache.recorded_in_order(
                [layer for _, layer in self._layers]
            ):
                # forward execution order deviates from definition order
                # (or a layer bypasses __call__): prefix cutoffs would be
                # unsound, so this evaluation stands but replay must not
                self.fast = False
            measurement = self._measurement_from_pass(acts, out, suffix)
            self._ref_cfg = cfg
            return measurement
        except BaseException:
            # forward cache, measurement state, and _ref_cfg may now
            # disagree about which candidate they describe — drop all
            self.reset_caches()
            raise
        finally:
            clear_quantization(self.model)

    def _fused_recal_pass(self, dirty, suffix_names, full):
        """One training-mode pass with BN momentum 1: recalibrates BN and
        runs the measurement forward simultaneously, making the reference
        path's second forward redundant (see
        :func:`repro.quant.quantizer.bn_batch_stats`).
        """
        from .quantizer import bn_batch_stats

        with bn_batch_stats(self.model, self._bns):
            with record_activations(self.model, suffix_names) as acts:
                if full:
                    out = self._forward_cache.forward(self.images)
                else:
                    out = self._forward_cache.forward(self.images, dirty=dirty)
        return acts, out
