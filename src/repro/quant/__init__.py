"""LPQ: genetic post-training quantization with LP encodings (Section 4)."""

from .baselines import per_layer_rmse, quantize_with_family
from .engine import IncrementalEvaluator
from .fitness import (
    FitnessConfig,
    FitnessEvaluator,
    compression_ratio,
    contrastive_objective,
    ir_fingerprints,
)
from .genetic import LPQConfig, LPQEngine, SearchHistory
from .objectives import OBJECTIVES, OutputObjectiveEvaluator
from .params import QuantSolution, clamp_lp_params, random_solution
from .pooling import kurtosis3, mean_pool_representation, pool_representation
from .ptq import LPQResult, lpq_quantize
from .quantizer import (
    ActQuantCache,
    LayerStats,
    WeightQuantCache,
    apply_quantization,
    bn_recalibrated,
    clear_quantization,
    collect_layer_stats,
    derive_activation_params,
    quantized,
)

__all__ = [
    "ActQuantCache",
    "FitnessConfig",
    "IncrementalEvaluator",
    "FitnessEvaluator",
    "LPQConfig",
    "LPQEngine",
    "LPQResult",
    "LayerStats",
    "OBJECTIVES",
    "OutputObjectiveEvaluator",
    "QuantSolution",
    "SearchHistory",
    "WeightQuantCache",
    "apply_quantization",
    "bn_recalibrated",
    "clamp_lp_params",
    "clear_quantization",
    "collect_layer_stats",
    "compression_ratio",
    "contrastive_objective",
    "derive_activation_params",
    "ir_fingerprints",
    "kurtosis3",
    "lpq_quantize",
    "mean_pool_representation",
    "per_layer_rmse",
    "pool_representation",
    "quantize_with_family",
    "quantized",
    "random_solution",
]
