"""Quantization solution encoding (the Δ vector of paper Section 4).

A :class:`QuantSolution` holds one :class:`~repro.numerics.LPParams` per
quantizable layer — the encoded vector Δ of length 4N, where each group of
4 values ⟨n_l, es_l, rs_l, sf_l⟩ configures layer ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..numerics import LPParams
from ..numerics.logposit import ES_MIN, N_MAX, N_MIN, RS_MIN

__all__ = ["QuantSolution", "clamp_lp_params", "random_solution"]


def clamp_lp_params(
    n: int, es: int, rs: int, sf: float, hw_widths: tuple[int, ...] | None = None
) -> LPParams:
    """Project arbitrary (possibly mutated) field values into the search
    space of Section 4 Step 1: n ∈ [2,8], es ∈ [0, n−3], rs ∈ [2, n−1].

    ``hw_widths`` optionally restricts ``n`` to hardware-packable widths
    (powers of two for LPA's MODE-A/B/C weight packing, Section 5.1).
    """
    n = int(np.clip(n, N_MIN, N_MAX))
    if hw_widths is not None:
        n = min(hw_widths, key=lambda w: (abs(w - n), w))
    es = int(np.clip(es, ES_MIN, max(n - 3, 0)))
    rs = int(np.clip(rs, RS_MIN, max(n - 1, RS_MIN)))
    return LPParams(n=n, es=es, rs=rs, sf=float(sf))


@dataclass(frozen=True)
class QuantSolution:
    """Per-layer LP parameters for a model's quantizable layers."""

    layer_params: tuple[LPParams, ...]

    def __len__(self) -> int:
        return len(self.layer_params)

    def __getitem__(self, idx: int) -> LPParams:
        return self.layer_params[idx]

    def replace_layer(self, idx: int, params: LPParams) -> "QuantSolution":
        items = list(self.layer_params)
        items[idx] = params
        return QuantSolution(tuple(items))

    def encode(self) -> np.ndarray:
        """Flatten to the Δ vector of length 4N."""
        return np.array(
            [v for p in self.layer_params for v in (p.n, p.es, p.rs, p.sf)],
            dtype=np.float64,
        )

    @staticmethod
    def decode(
        delta: np.ndarray, hw_widths: tuple[int, ...] | None = None
    ) -> "QuantSolution":
        delta = np.asarray(delta, dtype=np.float64)
        if delta.size % 4:
            raise ValueError("Δ length must be a multiple of 4")
        params = []
        for i in range(0, delta.size, 4):
            n, es, rs, sf = delta[i : i + 4]
            params.append(
                clamp_lp_params(round(n), round(es), round(rs), sf, hw_widths)
            )
        return QuantSolution(tuple(params))

    def mean_weight_bits(self) -> float:
        """Average n over layers (unweighted) — the headline 'MP x.y'."""
        return float(np.mean([p.n for p in self.layer_params]))

    def weighted_bits(self, param_counts: list[int]) -> float:
        """Parameter-weighted average bit-width (drives model size)."""
        total = sum(param_counts)
        return float(
            sum(p.n * c for p, c in zip(self.layer_params, param_counts)) / total
        )

    def model_size_mb(self, param_counts: list[int]) -> float:
        """Quantized model size in MB (bit-packed weights)."""
        bits = sum(p.n * c for p, c in zip(self.layer_params, param_counts))
        return bits / 8 / 1e6


def random_solution(
    rng: np.random.Generator,
    num_layers: int,
    layer_log_centers: list[float],
    hw_widths: tuple[int, ...] | None = None,
) -> QuantSolution:
    """Step 1 candidate initialization.

    n, es, rs are sampled uniformly from the constrained space; sf is
    sampled from a small ball around each layer's weight-distribution
    centre (Section 4: "a uniform ball ... centered around the mean weight
    distribution of that layer"), interpreted in the log domain where LP's
    scale factor lives (see :func:`repro.numerics.tensor_log_center`).
    """
    params = []
    for center in layer_log_centers:
        n = int(rng.integers(N_MIN, N_MAX + 1))
        if hw_widths is not None:
            n = int(rng.choice(hw_widths))
        es = int(rng.integers(0, max(n - 3, 0) + 1))
        rs = int(rng.integers(RS_MIN, max(n - 1, RS_MIN) + 1))
        sf = center + float(rng.uniform(-1e-3, 1e-3))
        params.append(clamp_lp_params(n, es, rs, sf, hw_widths))
    if len(params) != num_layers:
        raise ValueError("one log-centre per layer required")
    return QuantSolution(tuple(params))
