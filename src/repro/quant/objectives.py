"""Baseline quantization objectives compared in Fig. 5(a).

All baselines are *global* losses on the final model output; the paper
shows they either overfit the calibration set (MSE, KL) or miss the
representational collapse of intermediate layers (global contrastive).
Each evaluator shares the interface of
:class:`repro.quant.fitness.FitnessEvaluator` so the GA engine can swap
objectives for the convergence experiment.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, softmax
from .fitness import FitnessConfig, compression_ratio, contrastive_objective
from .params import QuantSolution

__all__ = ["OutputObjectiveEvaluator", "OBJECTIVES"]


def _mse(q: np.ndarray, fp: np.ndarray) -> float:
    return float(np.mean((q - fp) ** 2))


def _kl(q: np.ndarray, fp: np.ndarray, eps: float = 1e-9) -> float:
    """KL(FP || quantized) over softmax outputs."""
    p = softmax(np.asarray(fp, dtype=np.float64))
    r = softmax(np.asarray(q, dtype=np.float64))
    return float(np.mean(np.sum(p * (np.log(p + eps) - np.log(r + eps)), axis=-1)))


def _cosine(q: np.ndarray, fp: np.ndarray, eps: float = 1e-12) -> float:
    qn = q / np.maximum(np.linalg.norm(q, axis=-1, keepdims=True), eps)
    fn = fp / np.maximum(np.linalg.norm(fp, axis=-1, keepdims=True), eps)
    return float(np.mean(1.0 - np.sum(qn * fn, axis=-1)))


def _global_contrastive(q: np.ndarray, fp: np.ndarray, tau: float = 0.07) -> float:
    """Contrastive loss on final outputs only (Evol-Q style)."""
    return contrastive_objective(q, fp, tau)


_GLOBAL_LOSSES = {
    "mse": _mse,
    "kl": _kl,
    "cosine": _cosine,
    "global_contrastive": _global_contrastive,
}

#: objective name -> human label used in the Fig. 5(a) harness
OBJECTIVES = {
    "mse": "MSE",
    "kl": "KL-Divergence",
    "cosine": "Cosine",
    "global_contrastive": "Global Contrastive",
    "global_local_contrastive": "Global-Local Contrastive (ours)",
}


class OutputObjectiveEvaluator:
    """Fitness from a global (final-output) loss plus the L_CR factor."""

    def __init__(
        self,
        model: Module,
        calib_images: np.ndarray,
        param_counts: list[int],
        objective: str,
        config: FitnessConfig | None = None,
    ) -> None:
        from .quantizer import clear_quantization

        if objective not in _GLOBAL_LOSSES:
            raise ValueError(
                f"unknown objective {objective!r}; choose from "
                f"{sorted(_GLOBAL_LOSSES)}"
            )
        self.model = model
        self.images = calib_images
        self.param_counts = param_counts
        self.objective = objective
        self.config = config or FitnessConfig()
        clear_quantization(model)
        model.eval()
        self.fp_output = np.asarray(model(calib_images), dtype=np.float64)
        self.evaluations = 0

    def __call__(self, solution: QuantSolution, act_params=None) -> float:
        from .quantizer import bn_recalibrated, quantized

        with quantized(self.model, solution, act_params):
            with bn_recalibrated(self.model, self.images):
                out = np.asarray(self.model(self.images), dtype=np.float64)
        self.evaluations += 1
        loss = _GLOBAL_LOSSES[self.objective](out, self.fp_output)
        lcr = compression_ratio(solution, self.param_counts)
        return loss * lcr**self.config.lam
