"""Baseline quantization objectives compared in Fig. 5(a).

All baselines are *global* losses on the final model output; the paper
shows they either overfit the calibration set (MSE, KL) or miss the
representational collapse of intermediate layers (global contrastive).
Each evaluator shares the interface of
:class:`repro.quant.fitness.FitnessEvaluator` so the GA engine can swap
objectives for the convergence experiment — including the incremental
fast path (result memo, weight/activation quant caches, prefix-reuse
forward replay, fused BN recalibration): a Fig. 5(a) baseline sweep no
longer pays the full reference-path cost per candidate.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, softmax
from ..spec import registry as spec_registry
from .engine import FitnessConfig, IncrementalEvaluator
from .fitness import contrastive_objective

__all__ = ["OutputObjectiveEvaluator", "OBJECTIVES"]


def _mse(q: np.ndarray, fp: np.ndarray) -> float:
    return float(np.mean((q - fp) ** 2))


def _kl(q: np.ndarray, fp: np.ndarray, eps: float = 1e-9) -> float:
    """KL(FP || quantized) over softmax outputs."""
    p = softmax(np.asarray(fp, dtype=np.float64))
    r = softmax(np.asarray(q, dtype=np.float64))
    return float(np.mean(np.sum(p * (np.log(p + eps) - np.log(r + eps)), axis=-1)))


def _cosine(q: np.ndarray, fp: np.ndarray, eps: float = 1e-12) -> float:
    qn = q / np.maximum(np.linalg.norm(q, axis=-1, keepdims=True), eps)
    fn = fp / np.maximum(np.linalg.norm(fp, axis=-1, keepdims=True), eps)
    return float(np.mean(1.0 - np.sum(qn * fn, axis=-1)))


def _global_contrastive(q: np.ndarray, fp: np.ndarray, tau: float = 0.07) -> float:
    """Contrastive loss on final outputs only (Evol-Q style)."""
    return contrastive_objective(q, fp, tau)


_GLOBAL_LOSSES = {
    "mse": _mse,
    "kl": _kl,
    "cosine": _cosine,
    "global_contrastive": _global_contrastive,
}

#: objective name -> human label used in the Fig. 5(a) harness; this is
#: the ``objective`` registry of :mod:`repro.spec.registry` itself (a
#: Mapping), so ``name in OBJECTIVES`` / ``sorted(OBJECTIVES)`` /
#: ``OBJECTIVES[name]`` keep working while registered extension
#: objectives are accepted everywhere the built-ins are
OBJECTIVES = spec_registry.registry("objective")
for _name, _label in (
    ("mse", "MSE"),
    ("kl", "KL-Divergence"),
    ("cosine", "Cosine"),
    ("global_contrastive", "Global Contrastive"),
    ("global_local_contrastive", "Global-Local Contrastive (ours)"),
):
    OBJECTIVES.register(_name, _label)


class OutputObjectiveEvaluator(IncrementalEvaluator):
    """Fitness from a global (final-output) loss plus the L_CR factor.

    Built on the same incremental engine as ``FitnessEvaluator``; the
    candidate measurement is simply the model's final output, so the fast
    pass records no intermediate activations and the prefix-reuse replay
    recomputes only the suffix forward.  Exposes the same
    ``evaluations``/``computed_evaluations`` counters and perf sections
    (``objective.evaluate`` timer, ``objective.memo`` cache) so benches
    report both evaluators uniformly.
    """

    timer_name = "objective.evaluate"
    memo_name = "objective.memo"

    def __init__(
        self,
        model: Module,
        calib_images: np.ndarray,
        param_counts: list[int],
        objective: str,
        config: FitnessConfig | None = None,
        perf=None,
    ) -> None:
        if objective not in _GLOBAL_LOSSES:
            raise ValueError(
                f"unknown objective {objective!r}; choose from "
                f"{sorted(_GLOBAL_LOSSES)}"
            )
        self.objective = objective
        super().__init__(model, calib_images, param_counts, config, perf=perf)

    def _prepare_reference(self) -> None:
        self.fp_output = np.asarray(self.model(self.images), dtype=np.float64)

    def _reference_measurement(self) -> np.ndarray:
        return np.asarray(self.model(self.images), dtype=np.float64)

    def _measurement_from_pass(self, acts, out, suffix) -> np.ndarray:
        return np.asarray(out, dtype=np.float64)

    def _loss(self, out: np.ndarray) -> float:
        return _GLOBAL_LOSSES[self.objective](out, self.fp_output)
