"""Applying LP quantization solutions to models (fake-quantization).

Weights are replaced by their LP-quantized values through each layer's
``weight_fq`` override; activations are quantized at layer inputs through
``input_fq``.  The FP weights are never modified, so quantization can be
applied/removed freely — the standard fake-quantization simulation used
by PTQ frameworks (the paper's LPQ is implemented the same way on
PyTorch).
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from ..nn import Module, quantizable_layers, record_activations
from ..numerics import LPParams, lp_quantize, lp_quantize_many, tensor_log_center
from .params import QuantSolution, clamp_lp_params

__all__ = [
    "ActQuantCache",
    "LayerStats",
    "WeightQuantCache",
    "collect_layer_stats",
    "derive_activation_params",
    "apply_quantization",
    "clear_quantization",
    "quantized",
    "bn_batch_stats",
    "bn_recalibrated",
]


class WeightQuantCache:
    """LRU cache of fake-quantized weight tensors keyed by (layer, params).

    During a block-wise LPQ search, consecutive candidates share the
    parameters of every layer outside the regenerated block, so the
    corresponding ``lp_quantize(weight)`` results recur constantly.  The
    cache is valid as long as the underlying FP weights are frozen (the
    search never trains); call :meth:`clear` if weights are mutated.

    ``stats``, when given, must expose ``hit()``/``miss()``/``evict()``
    (see :class:`repro.perf.CacheStats`).
    """

    def __init__(self, max_entries: int = 1024, stats=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = stats
        # entries pin the layer object: a live reference means its id can
        # never be recycled for a different layer, so an id-keyed hit is
        # always the layer it claims to be
        self._data: OrderedDict[
            tuple[int, LPParams], tuple[Module, np.ndarray]
        ] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def quantized_weight(self, layer: Module, params: LPParams) -> np.ndarray:
        key = (id(layer), params)
        entry = self._data.get(key)
        if entry is not None:
            self._data.move_to_end(key)
            if self.stats is not None:
                self.stats.hit()
            return entry[1]
        if self.stats is not None:
            self.stats.miss()
        wq = lp_quantize(layer.weight.data, params).astype(layer.weight.data.dtype)
        self._data[key] = (layer, wq)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            if self.stats is not None:
                self.stats.evict()
        return wq

    def prefill(self, pairs) -> int:
        """Batch-compute missing entries with one stacked LUT pass.

        ``pairs`` is an iterable of ``(layer, params)``; pairs already
        cached (or duplicated within the batch) are skipped, the rest go
        through :func:`repro.numerics.lp_quantize_many` — pairs sharing
        a clamped format run one shared ``searchsorted`` over their
        concatenated weights, bitwise identical to the per-pair path.
        Each computed entry counts as a *miss* (it is the same compute a
        later :meth:`quantized_weight` miss would have done); the later
        lookups then count as hits.  Returns the number of entries
        computed.
        """
        missing: list[tuple[Module, LPParams]] = []
        seen: set[tuple[int, LPParams]] = set()
        for layer, params in pairs:
            key = (id(layer), params)
            if key in self._data or key in seen:
                continue
            seen.add(key)
            missing.append((layer, params))
        if not missing:
            return 0
        quantized = lp_quantize_many(
            [layer.weight.data for layer, _ in missing],
            [params for _, params in missing],
        )
        for (layer, params), wq in zip(missing, quantized):
            if self.stats is not None:
                self.stats.miss()
            self._data[(id(layer), params)] = (
                layer,
                wq.astype(layer.weight.data.dtype),
            )
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                if self.stats is not None:
                    self.stats.evict()
        return len(missing)

    def clear(self) -> None:
        self._data.clear()


class ActQuantCache:
    """LRU cache of quantized activation tensors keyed by
    ``(layer, act-params, input identity)``.

    During a prefix-reuse search the input of the first recomputed layer
    is served from the forward cache, so across consecutive candidates it
    is the *same array object*; when that layer's activation parameters
    did not change either, ``input_fq`` used to re-run ``lp_quantize`` on
    identical data every pass.  The cache memoises those results.

    Correctness rests on identity, not equality: an entry is returned
    only when the stored input *is* the requested array (``is``), and the
    entry pins both the input and the layer so their ids can never be
    recycled while the entry lives.  Layers never mutate their outputs in
    place, so a pinned input's contents are stable.  The cached tensor is
    the verbatim result of ``lp_quantize`` on the same array — reuse is
    bitwise-identical by construction.
    """

    def __init__(self, max_entries: int = 64, stats=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = stats
        self._data: OrderedDict[
            tuple[int, LPParams, int], tuple[Module, np.ndarray, np.ndarray]
        ] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def quantize(
        self, layer: Module, x: np.ndarray, params: LPParams
    ) -> np.ndarray:
        key = (id(layer), params, id(x))
        entry = self._data.get(key)
        if entry is not None and entry[1] is x:
            self._data.move_to_end(key)
            if self.stats is not None:
                self.stats.hit()
            return entry[2]
        if self.stats is not None:
            self.stats.miss()
        qx = lp_quantize(x, params).astype(x.dtype)
        self._data[key] = (layer, x, qx)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            if self.stats is not None:
                self.stats.evict()
        return qx

    def clear(self) -> None:
        self._data.clear()


class LayerStats:
    """Per-layer calibration statistics needed to derive LP parameters."""

    def __init__(
        self,
        names: list[str],
        param_counts: list[int],
        weight_log_centers: list[float],
        act_log_centers: list[float],
    ) -> None:
        self.names = names
        self.param_counts = param_counts
        self.weight_log_centers = weight_log_centers
        self.act_log_centers = act_log_centers

    def __len__(self) -> int:
        return len(self.names)


def collect_layer_stats(model: Module, calib_images: np.ndarray) -> LayerStats:
    """One FP calibration pass: weight/activation log-centres per layer."""
    layers = quantizable_layers(model)
    names = [name for name, _ in layers]
    param_counts = [int(layer.weight.size) for _, layer in layers]
    weight_centers = [tensor_log_center(layer.weight.data) for _, layer in layers]
    model.eval()
    with record_activations(model, names) as acts:
        model(calib_images)
    act_centers = [tensor_log_center(acts[name]) for name in names]
    return LayerStats(names, param_counts, weight_centers, act_centers)


def derive_activation_params(
    solution: QuantSolution,
    stats: LayerStats,
    mode: str = "calibrated",
    input_log_center: float = 0.0,
) -> list[LPParams]:
    """Activation LP parameters from weight parameters (Section 4).

    Paper rules: ``n_act = min(8, 2·n_w)``, ``es_act = min(5, 2·es_w)``,
    ``rs_act = rs_w``, and the scale factor either follows the paper's
    recurrence ``sf_act^l = sf_act^{l-1} + sf_w^l`` (``mode="recurrence"``)
    or is re-centred on the calibration activations (``mode="calibrated"``,
    the default — equivalent to the PPU computing activation scale factors
    at runtime, which LPA's post-processing unit does in Section 5.1).

    The returned params describe the *output* activation of each layer;
    layer ``l``'s input quantizer therefore uses entry ``l − 1``.
    """
    if mode not in ("calibrated", "recurrence"):
        raise ValueError(f"unknown activation sf mode {mode!r}")
    out: list[LPParams] = []
    sf_prev = input_log_center
    for i, wp in enumerate(solution.layer_params):
        n_act = min(8, wp.n * 2)
        # floor es/rs so the activation format keeps enough dynamic range
        # even when a 2-bit weight layer (es_w = 0) feeds it: activations
        # span several octaves regardless of the weight precision.
        es_act = min(5, max(wp.es * 2, 1))
        rs_act = max(wp.rs, 2)
        if mode == "recurrence":
            sf_act = sf_prev + wp.sf
            sf_prev = sf_act
        else:
            sf_act = stats.act_log_centers[i]
        out.append(clamp_lp_params(n_act, es_act, rs_act, sf_act))
    return out


def apply_quantization(
    model: Module,
    solution: QuantSolution,
    act_params: list[LPParams] | None = None,
    cache: WeightQuantCache | None = None,
    act_cache: ActQuantCache | None = None,
) -> None:
    """Install weight (and optionally activation) fake-quantization.

    ``act_params[l]`` describes layer ``l``'s *output*; it is installed as
    the *input* quantizer of layer ``l + 1``.  Layer 0's input (the image)
    stays unquantized, matching the usual PTQ convention of an 8-bit-or-
    better input pipeline.

    With a :class:`WeightQuantCache`, layers whose parameters were seen
    before reuse the cached quantized tensor instead of re-running
    ``lp_quantize`` — the per-candidate cost of a block-wise search drops
    to quantizing only the regenerated block.  With an
    :class:`ActQuantCache`, the installed ``input_fq`` additionally
    memoises quantized activations by input identity, which pays off when
    a prefix-reuse forward feeds the same cached tensor to the first
    recomputed layer across candidates.
    """
    layers = quantizable_layers(model)
    if len(layers) != len(solution):
        raise ValueError(
            f"solution has {len(solution)} layers, model has {len(layers)}"
        )
    for i, (_, layer) in enumerate(layers):
        wp = solution[i]
        if cache is not None:
            layer.weight_fq = cache.quantized_weight(layer, wp)
        else:
            layer.weight_fq = lp_quantize(layer.weight.data, wp).astype(
                layer.weight.data.dtype
            )
        if act_params is not None and i > 0:
            ap = act_params[i - 1]
            layer.input_fq = _make_act_quantizer(ap, layer, act_cache)
        else:
            layer.input_fq = None


def _make_act_quantizer(
    params: LPParams,
    layer: Module | None = None,
    cache: ActQuantCache | None = None,
):
    if cache is not None and layer is not None:
        def quantize(x: np.ndarray) -> np.ndarray:
            return cache.quantize(layer, x, params)
    else:
        def quantize(x: np.ndarray) -> np.ndarray:
            return lp_quantize(x, params).astype(x.dtype)

    return quantize


def clear_quantization(model: Module) -> None:
    for _, layer in quantizable_layers(model):
        layer.clear_quant()


@contextlib.contextmanager
def quantized(
    model: Module,
    solution: QuantSolution,
    act_params: list[LPParams] | None = None,
) -> Iterator[Module]:
    """Context manager: model is quantized inside, restored on exit."""
    apply_quantization(model, solution, act_params)
    try:
        yield model
    finally:
        clear_quantization(model)


def _save_bn_state(bns: list) -> list:
    return [
        (bn.running_mean.copy(), bn.running_var.copy(), bn.momentum)
        for bn in bns
    ]


def _restore_bn_state(bns: list, saved: list) -> None:
    for bn, (mean, var, momentum) in zip(bns, saved):
        bn.running_mean[...] = mean
        bn.running_var[...] = var
        bn.momentum = momentum


@contextlib.contextmanager
def bn_batch_stats(model: Module, bns: list | None = None) -> Iterator[list]:
    """Training-mode window with BN momentum 1: every BatchNorm inside
    normalises by (and stores) the statistics of the current batch.

    With momentum 1 the stored running statistics *equal* the batch
    statistics, so outputs computed inside this window are bit-for-bit
    what an eval pass under recalibrated statistics would produce — the
    incremental fitness engine fuses recalibration and fingerprinting
    into one pass on this basis.  Statistics, momenta, and eval mode are
    all restored on exit.
    """
    from ..nn import BatchNorm2d

    if bns is None:
        bns = [m for _, m in model.named_modules() if isinstance(m, BatchNorm2d)]
    saved = _save_bn_state(bns)
    for bn in bns:
        bn.momentum = 1.0
    model.train()
    try:
        yield bns
    finally:
        model.eval()
        _restore_bn_state(bns, saved)


@contextlib.contextmanager
def bn_recalibrated(model: Module, calib_images: np.ndarray) -> Iterator[Module]:
    """Re-estimate BatchNorm running statistics under the *current*
    weights (deployment-time PTQ practice).

    Quantized conv weights shift pre-BN statistics; running stats
    collected during FP training are then systematically wrong.  One
    calibration pass with momentum 1 replaces them with the statistics
    of the quantized network.  Original stats (and momenta) are restored
    on exit.  A no-op for BN-free (LayerNorm) models.
    """
    from ..nn import BatchNorm2d

    bns = [m for _, m in model.named_modules() if isinstance(m, BatchNorm2d)]
    saved = _save_bn_state(bns)
    if bns:
        for bn in bns:
            bn.momentum = 1.0
        model.train()
        model(calib_images)
        model.eval()
        for bn, (_, _, momentum) in zip(bns, saved):
            bn.momentum = momentum
    try:
        yield model
    finally:
        _restore_bn_state(bns, saved)
        model.eval()
