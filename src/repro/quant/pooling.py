"""Kurtosis-3 row pooling of intermediate representations (Section 4.1).

Comparing full IR tensors is impractical, so LPQ pools each layer's output
row-wise.  The paper uses **Kurtosis-3** (excess kurtosis, DeCarlo 1997)
instead of mean pooling because it "better characterizes distribution
tailedness of DNN parameters" — two tensors can share a mean yet differ
wildly in their tails, which is exactly what aggressive quantization
destroys first.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kurtosis3", "pool_representation", "mean_pool_representation"]


def kurtosis3(x: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Excess kurtosis along ``axis``: E[(x-μ)^4]/σ^4 − 3.

    Constant rows (σ ≈ 0) pool to 0 rather than blowing up.
    """
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=axis, keepdims=True)
    centered = x - mean
    sq = centered * centered
    # the fourth moment squares the squares: elementwise pow(x, 4) goes
    # through libm and is ~8x slower than two multiplies
    var = sq.mean(axis=axis)
    fourth = (sq * sq).mean(axis=axis)
    out = np.zeros_like(var)
    ok = var > eps
    out[ok] = fourth[ok] / (var[ok] ** 2) - 3.0
    return out


def _rows(h: np.ndarray, batch: int | None = None) -> np.ndarray:
    """Collapse a layer output to (batch, features) rows.

    Layers inside windowed attention fold extra tiling factors into the
    leading axis (e.g. Swin's B·num_windows); passing the true image
    ``batch`` regroups those rows per image.
    """
    if h.ndim == 1:
        return h[None, :]
    if batch is not None and h.shape[0] != batch and h.shape[0] % batch == 0:
        return h.reshape(batch, -1)
    return h.reshape(h.shape[0], -1)


def pool_representation(h: np.ndarray, batch: int | None = None) -> np.ndarray:
    """Kurtosis-3 fingerprint of one layer output: (batch,) vector."""
    return kurtosis3(_rows(h, batch), axis=1)


def mean_pool_representation(h: np.ndarray, batch: int | None = None) -> np.ndarray:
    """Mean-pooling baseline (what the paper argues against)."""
    return _rows(h, batch).mean(axis=1)
