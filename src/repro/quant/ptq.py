"""High-level post-training quantization API.

``lpq_quantize(model, calib_images)`` runs the full LPQ pipeline — layer
statistics, fitness evaluator, genetic search, activation-parameter
derivation — and returns everything needed to deploy or score the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Module
from ..numerics import LPParams
from .fitness import FitnessConfig, FitnessEvaluator
from .genetic import LPQConfig, LPQEngine, SearchHistory
from .objectives import OBJECTIVES, OutputObjectiveEvaluator
from .params import QuantSolution
from .quantizer import (
    LayerStats,
    collect_layer_stats,
    derive_activation_params,
)

__all__ = ["LPQResult", "lpq_quantize"]


@dataclass
class LPQResult:
    """Outcome of an LPQ search."""

    solution: QuantSolution
    act_params: list[LPParams]
    fitness: float
    history: SearchHistory
    stats: LayerStats
    evaluations: int

    @property
    def mean_weight_bits(self) -> float:
        return self.solution.mean_weight_bits()

    @property
    def mean_act_bits(self) -> float:
        return float(np.mean([p.n for p in self.act_params]))

    def model_size_mb(self) -> float:
        return self.solution.model_size_mb(self.stats.param_counts)


def lpq_quantize(
    model: Module,
    calib_images: np.ndarray,
    config: LPQConfig | None = None,
    fitness_config: FitnessConfig | None = None,
    objective: str = "global_local_contrastive",
    act_sf_mode: str = "calibrated",
    executor=None,
) -> LPQResult:
    """Run LPQ on ``model`` using an unlabelled calibration batch.

    ``objective`` selects the fitness:  the paper's global-local
    contrastive objective by default, or one of the Fig. 5(a) baselines
    ("mse", "kl", "cosine", "global_contrastive").

    ``executor`` (a :class:`repro.parallel.ExecutorConfig`) fans the
    population evaluation out across worker replicas — ``serial`` (the
    default behaviour), ``thread``, or ``process`` backends.  Every
    backend produces a bitwise-identical search trajectory; the knob only
    changes wall-clock.  To quantize *several* models on one shared
    worker pool, see :func:`repro.serve.lpq_quantize_many`.

    A complete search on a toy model (real calls shrink only the search
    budget, not the pipeline):

    >>> import numpy as np
    >>> from repro import nn
    >>> from repro.quant import LPQConfig, lpq_quantize
    >>> nn.seed(0)
    >>> model = nn.Sequential(
    ...     nn.Conv2d(3, 4, 3, padding=1, bias=False),
    ...     nn.BatchNorm2d(4), nn.ReLU(),
    ...     nn.GlobalAvgPool(), nn.Linear(4, 4)).eval()
    >>> images = np.random.default_rng(0).normal(
    ...     size=(4, 3, 8, 8)).astype(np.float32)
    >>> result = lpq_quantize(model, images, config=LPQConfig(
    ...     population=3, passes=1, cycles=1, diversity_parents=2,
    ...     hw_widths=(4, 8), seed=5))
    >>> len(result.solution)  # one LPParams per quantizable layer
    2
    >>> bool(np.isfinite(result.fitness))
    True
    >>> result.mean_weight_bits <= 8.0  # hw_widths bounds the search
    True
    """
    config = config or LPQConfig()
    stats = collect_layer_stats(model, calib_images)
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
        )
    if executor is not None:
        # deferred import: repro.parallel builds on this package
        from ..parallel import EvaluatorSpec, PopulationEvaluator

        spec = EvaluatorSpec(
            images=calib_images,
            model=model,
            config=fitness_config,
            objective=(
                None if objective == "global_local_contrastive" else objective
            ),
            act_mode=act_sf_mode,
            stats=stats,
        )
        with PopulationEvaluator(spec, executor) as evaluator:
            engine = LPQEngine(evaluator, stats.weight_log_centers, config)
            solution, fitness = engine.run()
            evaluations = evaluator.evaluations
    else:
        if objective == "global_local_contrastive":
            evaluator = FitnessEvaluator(
                model, calib_images, stats.param_counts, fitness_config
            )
        else:
            evaluator = OutputObjectiveEvaluator(
                model, calib_images, stats.param_counts, objective,
                fitness_config,
            )

        def evaluate_with_acts(solution):
            # candidates are scored in their *deployed* configuration:
            # weights and activations quantized together (activation
            # params follow deterministically from the weight params,
            # Section 4)
            acts = derive_activation_params(solution, stats, mode=act_sf_mode)
            return evaluator(solution, acts)

        engine = LPQEngine(evaluate_with_acts, stats.weight_log_centers, config)
        solution, fitness = engine.run()
        evaluations = evaluator.evaluations
    act_params = derive_activation_params(solution, stats, mode=act_sf_mode)
    return LPQResult(
        solution=solution,
        act_params=act_params,
        fitness=fitness,
        history=engine.history,
        stats=stats,
        evaluations=evaluations,
    )
