"""High-level post-training quantization API.

``lpq_quantize(model, calib_images)`` runs the full LPQ pipeline — layer
statistics, fitness evaluator, genetic search, activation-parameter
derivation — and returns everything needed to deploy or score the result.

Both call styles are the same code: the legacy keyword signature is a
thin shim that constructs an (inline) :class:`repro.spec.SearchSpec`,
and ``lpq_quantize(spec=...)`` runs a declarative spec directly —
referencing the model and calibration batch by registry name, so the
identical search can be launched from a JSON file
(``scripts/run_search.py --spec``).  The two paths produce bitwise-
identical :class:`LPQResult`\\ s (``tests/spec/test_shim_equivalence.py``
asserts this on every executor backend).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Module
from ..numerics import LPParams
from .fitness import FitnessConfig, FitnessEvaluator
from .genetic import LPQConfig, LPQEngine, SearchHistory
from .objectives import OBJECTIVES, OutputObjectiveEvaluator
from .params import QuantSolution
from .quantizer import (
    LayerStats,
    collect_layer_stats,
    derive_activation_params,
)

__all__ = ["LPQResult", "lpq_quantize"]


@dataclass
class LPQResult:
    """Outcome of an LPQ search."""

    solution: QuantSolution
    act_params: list[LPParams]
    fitness: float
    history: SearchHistory
    stats: LayerStats
    evaluations: int

    @property
    def mean_weight_bits(self) -> float:
        return self.solution.mean_weight_bits()

    @property
    def mean_act_bits(self) -> float:
        return float(np.mean([p.n for p in self.act_params]))

    def model_size_mb(self) -> float:
        return self.solution.model_size_mb(self.stats.param_counts)


def lpq_quantize(
    model: Module | None = None,
    calib_images: np.ndarray | None = None,
    config: LPQConfig | None = None,
    fitness_config: FitnessConfig | None = None,
    objective: str = "global_local_contrastive",
    act_sf_mode: str = "calibrated",
    executor=None,
    *,
    spec=None,
) -> LPQResult:
    """Run LPQ on ``model`` using an unlabelled calibration batch.

    ``objective`` selects the fitness:  the paper's global-local
    contrastive objective by default, or one of the Fig. 5(a) baselines
    ("mse", "kl", "cosine", "global_contrastive").

    ``executor`` (a :class:`repro.parallel.ExecutorConfig`) fans the
    population evaluation out across worker replicas — ``serial`` (the
    default behaviour), ``thread``, or ``process`` backends.  Every
    backend produces a bitwise-identical search trajectory; the knob only
    changes wall-clock.  To quantize *several* models on one shared
    worker pool, see :func:`repro.serve.lpq_quantize_many`.

    ``spec`` (a :class:`repro.spec.SearchSpec`, mutually exclusive with
    every other argument) runs a declarative search request instead: the
    model and calibration batch are resolved from the spec's registry
    references, and all remaining knobs come from the spec's fields.
    The legacy keyword call constructs exactly such a spec internally,
    so the two styles are the same search bit for bit.

    A complete search on a toy model (real calls shrink only the search
    budget, not the pipeline):

    >>> import numpy as np
    >>> from repro import nn
    >>> from repro.quant import LPQConfig, lpq_quantize
    >>> nn.seed(0)
    >>> model = nn.Sequential(
    ...     nn.Conv2d(3, 4, 3, padding=1, bias=False),
    ...     nn.BatchNorm2d(4), nn.ReLU(),
    ...     nn.GlobalAvgPool(), nn.Linear(4, 4)).eval()
    >>> images = np.random.default_rng(0).normal(
    ...     size=(4, 3, 8, 8)).astype(np.float32)
    >>> result = lpq_quantize(model, images, config=LPQConfig(
    ...     population=3, passes=1, cycles=1, diversity_parents=2,
    ...     hw_widths=(4, 8), seed=5))
    >>> len(result.solution)  # one LPParams per quantizable layer
    2
    >>> bool(np.isfinite(result.fitness))
    True
    >>> result.mean_weight_bits <= 8.0  # hw_widths bounds the search
    True

    The same search as a declarative spec (the model referenced by
    registry name, so this request could have come from a JSON file):

    >>> from repro.spec import CalibSpec, SearchSpec
    >>> spec = SearchSpec(model="tiny:mlp", calib=CalibSpec(batch=4),
    ...                   config=LPQConfig(population=3, passes=1,
    ...                                    cycles=1, diversity_parents=2,
    ...                                    hw_widths=(4, 8), seed=5))
    >>> bool(np.isfinite(lpq_quantize(spec=spec).fitness))
    True
    """
    # deferred import: repro.spec.spec builds on this package
    from ..spec.spec import SearchSpec, reject_spec_conflicts

    if spec is not None:
        if not isinstance(spec, SearchSpec):
            raise TypeError(
                f"spec must be a repro.spec.SearchSpec, got "
                f"{type(spec).__name__}"
            )
        reject_spec_conflicts(
            "lpq_quantize(spec=...)",
            (
                ("model", model),
                ("calib_images", calib_images),
                ("config", config),
                ("fitness_config", fitness_config),
                ("executor", executor),
            ),
            objective=objective,
            act_sf_mode=act_sf_mode,
        )
    else:
        if model is None or calib_images is None:
            raise TypeError(
                "lpq_quantize requires model and calib_images (or a "
                "spec=SearchSpec)"
            )
        # the legacy shim: an *inline* spec around the live objects —
        # same fields, same code path, it just refuses to serialize
        spec = SearchSpec(
            config=config or LPQConfig(),
            fitness=fitness_config,
            objective=objective,
            act_sf_mode=act_sf_mode,
            executor=executor,
        )
    return _run_spec(spec, model=model, calib_images=calib_images)


def _run_spec(
    spec, model: Module | None = None, calib_images: np.ndarray | None = None
) -> LPQResult:
    """The one LPQ implementation behind both call styles.

    ``model``/``calib_images`` carry the live objects of an inline
    (legacy-shim) spec; a declarative spec resolves them through the
    component registries instead.
    """
    if model is None:
        model = spec.build_model()
    if calib_images is None:
        calib_images = spec.build_calib()
    config = spec.search_config()
    fitness_config = spec.fitness
    objective = spec.objective
    act_sf_mode = spec.act_sf_mode
    executor = spec.executor
    stats = collect_layer_stats(model, calib_images)
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
        )
    if executor is not None:
        # deferred import: repro.parallel builds on this package
        from ..parallel import EvaluatorSpec, PopulationEvaluator

        espec = EvaluatorSpec(
            images=calib_images,
            model=model,
            config=fitness_config,
            objective=(
                None if objective == "global_local_contrastive" else objective
            ),
            act_mode=act_sf_mode,
            stats=stats,
        )
        with PopulationEvaluator(espec, executor) as evaluator:
            engine = LPQEngine(evaluator, stats.weight_log_centers, config)
            solution, fitness = engine.run()
            evaluations = evaluator.evaluations
    else:
        if objective == "global_local_contrastive":
            evaluator = FitnessEvaluator(
                model, calib_images, stats.param_counts, fitness_config
            )
        else:
            evaluator = OutputObjectiveEvaluator(
                model, calib_images, stats.param_counts, objective,
                fitness_config,
            )

        def evaluate_with_acts(solution):
            # candidates are scored in their *deployed* configuration:
            # weights and activations quantized together (activation
            # params follow deterministically from the weight params,
            # Section 4)
            acts = derive_activation_params(solution, stats, mode=act_sf_mode)
            return evaluator(solution, acts)

        engine = LPQEngine(evaluate_with_acts, stats.weight_log_centers, config)
        solution, fitness = engine.run()
        evaluations = evaluator.evaluations
    act_params = derive_activation_params(solution, stats, mode=act_sf_mode)
    return LPQResult(
        solution=solution,
        act_params=act_params,
        fitness=fitness,
        history=engine.history,
        stats=stats,
        evaluations=evaluations,
    )
