"""LPQ fitness function (paper Section 4.1).

``L_F = L_CO · L_CR^λ`` where

* ``L_CO`` is a **global-local contrastive objective** over kurtosis-pooled
  intermediate representations (Eq. 6): for every calibration image ``p``
  the quantized model's IR fingerprint must stay close to the FP model's
  fingerprint of the *same* image (positive) and far from FP fingerprints
  of *other* images (negatives).
* ``L_CR`` rewards compression: Σ_l #PARAM_l · n_l, normalised here by the
  8-bit footprint so it is a dimensionless ratio in (0, 1].

Lower is better for both factors; λ = 0.4 balances them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Module, quantizable_layers, record_activations
from .params import QuantSolution
from .pooling import pool_representation

__all__ = [
    "FitnessConfig",
    "ir_fingerprints",
    "contrastive_objective",
    "compression_ratio",
    "FitnessEvaluator",
]


@dataclass(frozen=True)
class FitnessConfig:
    """Knobs of the fitness function; defaults follow the paper."""

    tau: float = 0.07  # concentration level of the contrastive loss
    lam: float = 0.4  # λ balancing L_CO and L_CR
    pooling: str = "kurtosis"  # "kurtosis" (paper) | "mean" (ablation)


def ir_fingerprints(
    model: Module,
    images: np.ndarray,
    layer_names: list[str],
    pooling: str = "kurtosis",
) -> np.ndarray:
    """(B, L) matrix: pooled IR of every layer, concatenated per image."""
    with record_activations(model, layer_names) as acts:
        model(images)
    batch = len(images)
    cols = []
    for name in layer_names:
        h = acts[name]
        if pooling == "kurtosis":
            cols.append(pool_representation(h, batch))
        elif pooling == "mean":
            from .pooling import mean_pool_representation

            cols.append(mean_pool_representation(h, batch))
        else:
            raise ValueError(f"unknown pooling {pooling!r}")
    return np.stack(cols, axis=1)


def _normalize_rows(f: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norm = np.linalg.norm(f, axis=1, keepdims=True)
    return f / np.maximum(norm, eps)


def contrastive_objective(
    fq: np.ndarray, ffp: np.ndarray, tau: float = 0.07
) -> float:
    """Eq. 6 over fingerprint matrices (rows = images).

    Fingerprints are row-normalised so the inner products are cosine
    similarities and the exponentials are bounded.
    """
    q = _normalize_rows(np.asarray(fq, dtype=np.float64))
    fp = _normalize_rows(np.asarray(ffp, dtype=np.float64))
    sim = q @ fp.T / tau  # sim[p, p'] = <H_q_p, H_FP_p'> / τ
    b = sim.shape[0]
    pos = np.diag(sim)
    mask = ~np.eye(b, dtype=bool)
    # log(1 + e^{-pos} Σ_{p-} e^{neg}) computed stably in log space
    neg_logsum = np.zeros(b)
    for p in range(b):
        row = sim[p][mask[p]]
        m = row.max()
        neg_logsum[p] = m + np.log(np.exp(row - m).sum())
    z = neg_logsum - pos
    loss = np.log1p(np.exp(np.minimum(z, 50.0)))
    loss = np.where(z > 50.0, z, loss)  # asymptote for huge z
    return float(loss.mean())


def compression_ratio(solution: QuantSolution, param_counts: list[int]) -> float:
    """Σ #PARAM_l · n_l normalised by the 8-bit footprint (∈ (0, 1])."""
    bits = sum(p.n * c for p, c in zip(solution.layer_params, param_counts))
    return bits / (8.0 * sum(param_counts))


class FitnessEvaluator:
    """Evaluates L_F for candidate solutions against a frozen FP reference.

    The FP fingerprints are computed once; each candidate evaluation costs
    a single quantized forward pass over the calibration batch.
    """

    def __init__(
        self,
        model: Module,
        calib_images: np.ndarray,
        param_counts: list[int],
        config: FitnessConfig | None = None,
    ) -> None:
        from .quantizer import clear_quantization

        self.model = model
        self.images = calib_images
        self.param_counts = param_counts
        self.config = config or FitnessConfig()
        self.layer_names = [n for n, _ in quantizable_layers(model)]
        clear_quantization(model)
        model.eval()
        self.fp_fingerprints = ir_fingerprints(
            model, calib_images, self.layer_names, self.config.pooling
        )
        self.evaluations = 0

    def __call__(
        self, solution: QuantSolution, act_params=None
    ) -> float:
        from .quantizer import bn_recalibrated, quantized

        with quantized(self.model, solution, act_params):
            # evaluate the candidate as it would be deployed: with BN
            # statistics re-estimated under the quantized weights
            with bn_recalibrated(self.model, self.images):
                fq = ir_fingerprints(
                    self.model, self.images, self.layer_names,
                    self.config.pooling,
                )
        self.evaluations += 1
        lco = contrastive_objective(fq, self.fp_fingerprints, self.config.tau)
        lcr = compression_ratio(solution, self.param_counts)
        return lco * lcr**self.config.lam
