"""LPQ fitness function (paper Section 4.1).

``L_F = L_CO · L_CR^λ`` where

* ``L_CO`` is a **global-local contrastive objective** over kurtosis-pooled
  intermediate representations (Eq. 6): for every calibration image ``p``
  the quantized model's IR fingerprint must stay close to the FP model's
  fingerprint of the *same* image (positive) and far from FP fingerprints
  of *other* images (negatives).
* ``L_CR`` rewards compression: Σ_l #PARAM_l · n_l, normalised here by the
  8-bit footprint so it is a dimensionless ratio in (0, 1].

Lower is better for both factors; λ = 0.4 balances them.

The evaluator has two modes.  The reference path quantizes every layer,
re-estimates BatchNorm statistics in a full calibration pass, then runs a
second full pass to fingerprint the quantized model.  The *incremental*
engine (``FitnessConfig.fast``, default on) produces bitwise-identical
fitness values while exploiting the block-wise structure of the search:

* a fitness memo keyed by the full solution makes duplicate children free;
* a :class:`~repro.quant.quantizer.WeightQuantCache` re-quantizes only the
  layers whose parameters actually changed;
* a prefix-reuse forward pass (:class:`repro.nn.ForwardCache`) replays
  cached activations up to the first changed layer and recomputes only
  the suffix — BN-recalibration statistics of the unchanged prefix are
  implicitly reused, because the replayed outputs already embody them;
* BN recalibration and fingerprinting happen in **one** pass: with BN
  momentum 1 a batch normalised by its own statistics in training mode is
  bit-for-bit what the eval pass would recompute, so the second forward
  of the reference path is redundant;
* pooled fingerprint columns of unchanged layers are reused as-is.

The engine assumes frozen weights (true during a search) and falls back
to the reference path when the model contains active Dropout, whose
training-mode RNG draws cannot be replayed deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import (
    BatchNorm2d,
    Dropout,
    ForwardCache,
    Module,
    quantizable_layers,
    record_activations,
)
from ..perf import get_perf
from .params import QuantSolution
from .pooling import pool_representation

__all__ = [
    "FitnessConfig",
    "ir_fingerprints",
    "contrastive_objective",
    "compression_ratio",
    "FitnessEvaluator",
]


@dataclass(frozen=True)
class FitnessConfig:
    """Knobs of the fitness function; defaults follow the paper.

    ``fast`` toggles the incremental evaluation engine (quantized-weight
    cache, fitness memo, prefix-reuse forward passes, fused BN
    recalibration).  Fast and reference paths produce bitwise-identical
    fitness values; the flag exists for benchmarking and as an escape
    hatch.  ``weight_cache_entries`` bounds the quantized-weight LRU.
    """

    tau: float = 0.07  # concentration level of the contrastive loss
    lam: float = 0.4  # λ balancing L_CO and L_CR
    pooling: str = "kurtosis"  # "kurtosis" (paper) | "mean" (ablation)
    fast: bool = True  # incremental evaluation engine
    weight_cache_entries: int = 1024


def ir_fingerprints(
    model: Module,
    images: np.ndarray,
    layer_names: list[str],
    pooling: str = "kurtosis",
) -> np.ndarray:
    """(B, L) matrix: pooled IR of every layer, concatenated per image."""
    with record_activations(model, layer_names) as acts:
        model(images)
    batch = len(images)
    cols = [_pool_column(acts[name], batch, pooling) for name in layer_names]
    return np.stack(cols, axis=1)


def _pool_column(h: np.ndarray, batch: int, pooling: str) -> np.ndarray:
    if pooling == "kurtosis":
        return pool_representation(h, batch)
    if pooling == "mean":
        from .pooling import mean_pool_representation

        return mean_pool_representation(h, batch)
    raise ValueError(f"unknown pooling {pooling!r}")


def _normalize_rows(f: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norm = np.linalg.norm(f, axis=1, keepdims=True)
    return f / np.maximum(norm, eps)


def contrastive_objective(
    fq: np.ndarray, ffp: np.ndarray, tau: float = 0.07
) -> float:
    """Eq. 6 over fingerprint matrices (rows = images).

    Fingerprints are row-normalised so the inner products are cosine
    similarities and the exponentials are bounded.  The per-image masked
    log-sum-exp over negatives is computed for all rows at once: the
    off-diagonal similarities are gathered row-major into a (B, B-1)
    matrix, so each row reduces over the same elements in the same order
    as a per-row loop would.
    """
    q = _normalize_rows(np.asarray(fq, dtype=np.float64))
    fp = _normalize_rows(np.asarray(ffp, dtype=np.float64))
    sim = q @ fp.T / tau  # sim[p, p'] = <H_q_p, H_FP_p'> / τ
    b = sim.shape[0]
    pos = np.diag(sim)
    off = sim[~np.eye(b, dtype=bool)].reshape(b, b - 1)
    m = off.max(axis=1)
    neg_logsum = m + np.log(np.exp(off - m[:, None]).sum(axis=1))
    # log(1 + e^{-pos} Σ_{p-} e^{neg}) computed stably in log space
    z = neg_logsum - pos
    loss = np.log1p(np.exp(np.minimum(z, 50.0)))
    loss = np.where(z > 50.0, z, loss)  # asymptote for huge z
    return float(loss.mean())


def compression_ratio(solution: QuantSolution, param_counts: list[int]) -> float:
    """Σ #PARAM_l · n_l normalised by the 8-bit footprint (∈ (0, 1])."""
    bits = sum(p.n * c for p, c in zip(solution.layer_params, param_counts))
    return bits / (8.0 * sum(param_counts))


def _has_active_dropout(model: Module) -> bool:
    return any(
        isinstance(m, Dropout) and m.p > 0 for _, m in model.named_modules()
    )


class FitnessEvaluator:
    """Evaluates L_F for candidate solutions against a frozen FP reference.

    The FP fingerprints are computed once.  With the incremental engine
    (see module docstring) each candidate evaluation costs one partial
    forward pass over the calibration batch — only the layers at or after
    the first changed layer are recomputed; with ``fast=False`` it costs
    a full BN-recalibration pass plus a full fingerprint pass.

    The engine's caches assume the model's FP weights stay frozen for the
    evaluator's lifetime; call :meth:`reset_caches` after mutating them.
    """

    def __init__(
        self,
        model: Module,
        calib_images: np.ndarray,
        param_counts: list[int],
        config: FitnessConfig | None = None,
    ) -> None:
        from .quantizer import WeightQuantCache, clear_quantization

        self.model = model
        self.images = calib_images
        self.param_counts = param_counts
        self.config = config or FitnessConfig()
        self._layers = quantizable_layers(model)
        self.layer_names = [n for n, _ in self._layers]
        clear_quantization(model)
        model.eval()
        self.fp_fingerprints = ir_fingerprints(
            model, calib_images, self.layer_names, self.config.pooling
        )
        #: fitness evaluations requested (memo hits included)
        self.evaluations = 0
        #: evaluations that actually ran a forward pass (memo misses)
        self.computed_evaluations = 0
        self.perf = get_perf()
        # -- incremental engine state ------------------------------------
        self.fast = self.config.fast and not _has_active_dropout(model)
        self._bns = [
            m for _, m in model.named_modules() if isinstance(m, BatchNorm2d)
        ]
        self._memo: dict = {}
        self._weight_cache = WeightQuantCache(
            self.config.weight_cache_entries,
            stats=self.perf.cache("quant.weight_cache"),
        )
        self._forward_cache = ForwardCache(model)
        self._ref_cfg: tuple | None = None
        self._col_cache: list[np.ndarray | None] = [None] * len(self._layers)

    # -- public API -------------------------------------------------------
    def __call__(self, solution: QuantSolution, act_params=None) -> float:
        if self.fast:
            key = (
                solution,
                None if act_params is None else tuple(act_params),
            )
            memo_stats = self.perf.cache("fitness.memo")
            cached = self._memo.get(key)
            if cached is not None:
                memo_stats.hit()
                self.evaluations += 1  # requested, but served from the memo
                return cached
            memo_stats.miss()
        with self.perf.timer("fitness.evaluate").time():
            if self.fast:
                fq = self._fingerprints_fast(solution, act_params)
            else:
                fq = self._fingerprints_reference(solution, act_params)
        self.evaluations += 1
        self.computed_evaluations += 1
        lco = contrastive_objective(fq, self.fp_fingerprints, self.config.tau)
        lcr = compression_ratio(solution, self.param_counts)
        fitness = lco * lcr**self.config.lam
        if self.fast:
            self._memo[key] = fitness
        return fitness

    def reset_caches(self) -> None:
        """Invalidate all caches (required after mutating model weights)."""
        self._memo.clear()
        self._weight_cache.clear()
        self._forward_cache.invalidate()
        self._ref_cfg = None
        self._col_cache = [None] * len(self._layers)

    # -- reference path -----------------------------------------------------
    def _fingerprints_reference(self, solution, act_params) -> np.ndarray:
        from .quantizer import bn_recalibrated, quantized

        with quantized(self.model, solution, act_params):
            # evaluate the candidate as it would be deployed: with BN
            # statistics re-estimated under the quantized weights
            with bn_recalibrated(self.model, self.images):
                return ir_fingerprints(
                    self.model, self.images, self.layer_names,
                    self.config.pooling,
                )

    # -- incremental engine ---------------------------------------------
    def _layer_config(self, solution, act_params) -> tuple:
        """Per-layer installed configuration: (weight params, input-side
        activation params) — exactly what apply_quantization installs."""
        return tuple(
            (
                solution[i],
                act_params[i - 1] if act_params is not None and i > 0 else None,
            )
            for i in range(len(self._layers))
        )

    def _first_diff(self, cfg: tuple) -> int | None:
        """Index of the first layer whose config differs from the cached
        reference candidate (None = identical)."""
        if self._ref_cfg is None or len(self._ref_cfg) != len(cfg):
            return 0
        for i, (a, b) in enumerate(zip(self._ref_cfg, cfg)):
            if a != b:
                return i
        return None

    def _fingerprints_fast(self, solution, act_params) -> np.ndarray:
        from .quantizer import apply_quantization, clear_quantization

        cfg = self._layer_config(solution, act_params)
        full = not self._forward_cache.primed or self._ref_cfg is None
        first = 0 if full else self._first_diff(cfg)
        apply_quantization(
            self.model, solution, act_params, cache=self._weight_cache
        )
        try:
            if first is None:
                dirty, suffix = None, range(0)
            else:
                dirty = None if full else self._layers[first][1]
                suffix = range(first, len(self._layers))
            self.perf.counter("replay.layers_reused").inc(
                len(self._layers) - len(suffix)
            )
            suffix_names = [self.layer_names[i] for i in suffix]
            if self._bns:
                acts = self._fused_recal_pass(dirty, suffix_names, full)
            else:
                self.model.eval()
                with record_activations(self.model, suffix_names) as acts:
                    if full:
                        self._forward_cache.forward(self.images)
                    else:
                        self._forward_cache.forward(self.images, dirty=dirty)
            if full and not self._forward_cache.recorded_in_order(
                [layer for _, layer in self._layers]
            ):
                # forward execution order deviates from definition order
                # (or a layer bypasses __call__): prefix cutoffs would be
                # unsound, so this evaluation stands but replay must not
                self.fast = False
            batch = len(self.images)
            for i in suffix:
                self._col_cache[i] = _pool_column(
                    acts[self.layer_names[i]], batch, self.config.pooling
                )
            self._ref_cfg = cfg
            return np.stack(self._col_cache, axis=1)
        except BaseException:
            # forward cache, column cache, and _ref_cfg may now disagree
            # about which candidate they describe — drop everything
            self.reset_caches()
            raise
        finally:
            clear_quantization(self.model)

    def _fused_recal_pass(self, dirty, suffix_names, full) -> dict:
        """One training-mode pass with BN momentum 1: recalibrates BN and
        records fingerprint activations simultaneously, making the
        reference path's second forward redundant (see
        :func:`repro.quant.quantizer.bn_batch_stats`).
        """
        from .quantizer import bn_batch_stats

        with bn_batch_stats(self.model, self._bns):
            with record_activations(self.model, suffix_names) as acts:
                if full:
                    self._forward_cache.forward(self.images)
                else:
                    self._forward_cache.forward(self.images, dirty=dirty)
        return acts
