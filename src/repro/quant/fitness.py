"""LPQ fitness function (paper Section 4.1).

``L_F = L_CO · L_CR^λ`` where

* ``L_CO`` is a **global-local contrastive objective** over kurtosis-pooled
  intermediate representations (Eq. 6): for every calibration image ``p``
  the quantized model's IR fingerprint must stay close to the FP model's
  fingerprint of the *same* image (positive) and far from FP fingerprints
  of *other* images (negatives).
* ``L_CR`` rewards compression: Σ_l #PARAM_l · n_l, normalised here by the
  8-bit footprint so it is a dimensionless ratio in (0, 1].

Lower is better for both factors; λ = 0.4 balances them.

The evaluator has two modes.  The reference path quantizes every layer,
re-estimates BatchNorm statistics in a full calibration pass, then runs a
second full pass to fingerprint the quantized model.  The *incremental*
engine (``FitnessConfig.fast``, default on) produces bitwise-identical
fitness values while exploiting the block-wise structure of the search —
see :class:`repro.quant.engine.IncrementalEvaluator` for the machinery
(fitness memo, weight/activation quant caches, prefix-reuse forward
replay, fused BN recalibration).  On top of the shared engine this
evaluator adds a pooled-column cache: kurtosis fingerprint columns of
unchanged layers are reused as-is.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, record_activations
from .engine import FitnessConfig, IncrementalEvaluator
from .params import QuantSolution
from .pooling import pool_representation

__all__ = [
    "FitnessConfig",
    "ir_fingerprints",
    "contrastive_objective",
    "compression_ratio",
    "FitnessEvaluator",
]


def ir_fingerprints(
    model: Module,
    images: np.ndarray,
    layer_names: list[str],
    pooling: str = "kurtosis",
) -> np.ndarray:
    """(B, L) matrix: pooled IR of every layer, concatenated per image."""
    with record_activations(model, layer_names) as acts:
        model(images)
    batch = len(images)
    cols = [_pool_column(acts[name], batch, pooling) for name in layer_names]
    return np.stack(cols, axis=1)


def _pool_column(h: np.ndarray, batch: int, pooling: str) -> np.ndarray:
    if pooling == "kurtosis":
        return pool_representation(h, batch)
    if pooling == "mean":
        from .pooling import mean_pool_representation

        return mean_pool_representation(h, batch)
    raise ValueError(f"unknown pooling {pooling!r}")


def _normalize_rows(f: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norm = np.linalg.norm(f, axis=1, keepdims=True)
    return f / np.maximum(norm, eps)


def contrastive_objective(
    fq: np.ndarray, ffp: np.ndarray, tau: float = 0.07
) -> float:
    """Eq. 6 over fingerprint matrices (rows = images).

    Fingerprints are row-normalised so the inner products are cosine
    similarities and the exponentials are bounded.  The per-image masked
    log-sum-exp over negatives is computed for all rows at once: the
    off-diagonal similarities are gathered row-major into a (B, B-1)
    matrix, so each row reduces over the same elements in the same order
    as a per-row loop would.
    """
    q = _normalize_rows(np.asarray(fq, dtype=np.float64))
    fp = _normalize_rows(np.asarray(ffp, dtype=np.float64))
    sim = q @ fp.T / tau  # sim[p, p'] = <H_q_p, H_FP_p'> / τ
    b = sim.shape[0]
    pos = np.diag(sim)
    off = sim[~np.eye(b, dtype=bool)].reshape(b, b - 1)
    m = off.max(axis=1)
    neg_logsum = m + np.log(np.exp(off - m[:, None]).sum(axis=1))
    # log(1 + e^{-pos} Σ_{p-} e^{neg}) computed stably in log space
    z = neg_logsum - pos
    loss = np.log1p(np.exp(np.minimum(z, 50.0)))
    loss = np.where(z > 50.0, z, loss)  # asymptote for huge z
    return float(loss.mean())


def compression_ratio(solution: QuantSolution, param_counts: list[int]) -> float:
    """Σ #PARAM_l · n_l normalised by the 8-bit footprint (∈ (0, 1])."""
    bits = sum(p.n * c for p, c in zip(solution.layer_params, param_counts))
    return bits / (8.0 * sum(param_counts))


class FitnessEvaluator(IncrementalEvaluator):
    """Evaluates L_F for candidate solutions against a frozen FP reference.

    The FP fingerprints are computed once.  With the incremental engine
    (see module docstring) each candidate evaluation costs one partial
    forward pass over the calibration batch — only the layers at or after
    the first changed layer are recomputed; with ``fast=False`` it costs
    a full BN-recalibration pass plus a full fingerprint pass.

    The engine's caches assume the model's FP weights stay frozen for the
    evaluator's lifetime; call :meth:`reset_caches` after mutating them.
    """

    timer_name = "fitness.evaluate"
    memo_name = "fitness.memo"

    def _prepare_reference(self) -> None:
        self.fp_fingerprints = ir_fingerprints(
            self.model, self.images, self.layer_names, self.config.pooling
        )
        self._col_cache: list[np.ndarray | None] = [None] * len(self._layers)

    def _reference_measurement(self) -> np.ndarray:
        return ir_fingerprints(
            self.model, self.images, self.layer_names, self.config.pooling
        )

    def _suffix_record_names(self, suffix: range) -> list[str]:
        return [self.layer_names[i] for i in suffix]

    def _measurement_from_pass(self, acts, out, suffix) -> np.ndarray:
        batch = len(self.images)
        for i in suffix:
            self._col_cache[i] = _pool_column(
                acts[self.layer_names[i]], batch, self.config.pooling
            )
        return np.stack(self._col_cache, axis=1)

    def _loss(self, fq: np.ndarray) -> float:
        return contrastive_objective(fq, self.fp_fingerprints, self.config.tau)

    def _on_reset(self) -> None:
        self._col_cache = [None] * len(self._layers)
