"""LPQ's block-wise genetic search (paper Section 4, Steps 1-4).

The four steps:

1. **Candidate initialization** — K random Δ vectors, sf sampled in a
   small ball around each layer's weight-distribution centre.
2. **Re-generation** — the two fittest candidates parent a child; only a
   *block* of B consecutive layers is regenerated (Eqs. 2-5), all other
   layers copy the best parent.
3. **Diversity-promoting selection** — five random parents are each
   crossed with the Step-2 child; the best of those diverse children also
   enters the population, fighting premature convergence.
4. **Evaluation & population update** — fitness of all children computed,
   population extended, ranking by fitness.

The loop runs P passes over all blocks with C cycles per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..numerics import LPParams
from ..perf import get_perf
from .params import QuantSolution, clamp_lp_params, random_solution

__all__ = ["LPQConfig", "LPQEngine", "SearchHistory"]


@dataclass(frozen=True)
class LPQConfig:
    """Search hyper-parameters.  Paper defaults: K=20, P=10, C=4, B=4
    (CNNs) or one attention block (ViTs); five diversity parents.

    ``hw_widths`` restricts n to LPA-packable widths (Section 5.1
    constrains the LPQ search space of n to integer powers of 2 for
    hardware execution).  ``diversity``/``blockwise`` are ablation
    switches for the Step-3 and block-regeneration design choices.
    """

    population: int = 20  # K
    passes: int = 10  # P
    cycles: int = 4  # C
    block_size: int = 4  # B
    diversity_parents: int = 5
    hw_widths: tuple[int, ...] | None = (2, 4, 8)
    diversity: bool = True
    blockwise: bool = True
    seed: int = 0

    def to_dict(self) -> dict:
        """Plain-JSON dict form (used by :class:`repro.spec.SearchSpec`)."""
        from ..spec.serde import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LPQConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        from ..spec.serde import config_from_dict

        return config_from_dict(cls, data)


@dataclass
class SearchHistory:
    """Best fitness and solution after every population update."""

    best_fitness: list[float] = field(default_factory=list)
    mean_bits: list[float] = field(default_factory=list)

    def record(self, fitness: float, solution: QuantSolution) -> None:
        self.best_fitness.append(fitness)
        self.mean_bits.append(solution.mean_weight_bits())


def _rand_int_between(rng: np.random.Generator, lo: int, hi: int) -> int:
    """Uniform integer in [lo, hi] (inclusive), tolerating lo > hi."""
    if lo > hi:
        lo, hi = hi, lo
    return int(rng.integers(lo, hi + 1))


class LPQEngine:
    """Runs the genetic search against a fitness evaluator.

    ``evaluator(solution)`` must return a scalar (lower = fitter); see
    :class:`repro.quant.fitness.FitnessEvaluator`.  ``evaluator`` may be
    ``None`` when the engine is driven externally through
    :meth:`work_units` (the :class:`repro.serve.SearchScheduler` path),
    where candidate batches are yielded to the caller and fitness lists
    are sent back instead of being computed in-engine.

    Candidate *generation* (all engine RNG draws) is split from
    population *commit* — :meth:`propose_initial`/:meth:`commit_initial`
    and :meth:`propose_step`/:meth:`commit_step` — so a batch can be
    evaluated anywhere (in-process, thread pool, shared multi-job
    process pool) without changing the draw order.  :meth:`run`,
    :meth:`initialize`, and :meth:`step` compose exactly those pieces,
    so an externally driven search is bitwise-identical to a standalone
    one.

    A quick self-contained run against a toy fitness (mean weight bits,
    so the search just minimises precision):

    >>> from repro.quant import LPQConfig, LPQEngine
    >>> config = LPQConfig(population=4, passes=1, cycles=1,
    ...                    hw_widths=(2, 4, 8), seed=7)
    >>> engine = LPQEngine(lambda s: s.mean_weight_bits(),
    ...                    [0.0, 0.0, 0.0], config)
    >>> solution, fitness = engine.run()
    >>> len(solution)
    3
    >>> fitness == min(fit for _, fit in engine.population)
    True
    """

    def __init__(
        self,
        evaluator,
        layer_log_centers: list[float],
        config: LPQConfig | None = None,
        perf=None,
    ) -> None:
        self.evaluator = evaluator
        self.centers = list(layer_log_centers)
        self.config = config or LPQConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.num_layers = len(self.centers)
        self.population: list[tuple[QuantSolution, float]] = []
        self.history = SearchHistory()
        self.perf = perf if perf is not None else get_perf()

    # -- evaluation -----------------------------------------------------
    def _evaluate_batch(self, solutions: list[QuantSolution]) -> list[float]:
        """Score a batch of candidates, results in submission order.

        Evaluators exposing ``evaluate_many`` (the incremental evaluators
        and :class:`repro.parallel.PopulationEvaluator`) receive the whole
        batch at once — duplicates are deduped against their memo and the
        rest fanned out across executor workers; plain callables are
        scored serially.  Either way the returned order matches the
        submitted order, so trajectories are backend-independent.
        """
        if self.evaluator is None:
            raise RuntimeError(
                "engine has no evaluator: drive it through work_units() "
                "(e.g. via repro.serve.SearchScheduler) or construct it "
                "with an evaluator"
            )
        evaluate_many = getattr(self.evaluator, "evaluate_many", None)
        if evaluate_many is not None:
            fits = list(evaluate_many(solutions))
            if len(fits) != len(solutions):
                raise ValueError(
                    f"evaluate_many returned {len(fits)} results for "
                    f"{len(solutions)} candidates"
                )
            return fits
        return [self.evaluator(sol) for sol in solutions]

    # -- Step 1 ---------------------------------------------------------
    def propose_initial(self) -> list[QuantSolution]:
        """Generate the K Step-1 candidates (all RNG, no evaluation).

        The candidates are independent given the frozen model, so a
        scheduler may split the returned batch into chunks and evaluate
        them concurrently — ordering of the *results* is all that
        matters for determinism, not ordering of the evaluations.
        """
        return [
            random_solution(
                self.rng, self.num_layers, self.centers, self.config.hw_widths
            )
            for _ in range(self.config.population)
        ]

    def commit_initial(
        self, solutions: list[QuantSolution], fits: list[float]
    ) -> None:
        """Install the scored Step-1 population (fits in proposal order)."""
        if len(fits) != len(solutions):
            raise ValueError(
                f"{len(fits)} fitness values for {len(solutions)} candidates"
            )
        self.population = list(zip(solutions, fits))
        self.perf.counter("lpq.candidates").inc(len(solutions))
        self._rank()
        best_sol, best_fit = self.population[0]
        self.history.record(best_fit, best_sol)

    def initialize(self) -> None:
        """Sample K candidates and pre-compute their fitness.

        All candidates are generated up front (the evaluator draws no
        engine RNG, so the draw order is unchanged) and scored as one
        batch.
        """
        with self.perf.timer("lpq.initialize").time():
            sols = self.propose_initial()
            fits = self._evaluate_batch(sols)
        self.commit_initial(sols, fits)

    def _rank(self) -> None:
        self.population.sort(key=lambda item: item[1])

    # -- Step 2 ---------------------------------------------------------
    def _regenerate_layer(
        self, p1: LPParams, p2: LPParams, center: float
    ) -> LPParams:
        """Child layer parameters from two parents (Eqs. 2-5).

        min/max±1 ranges for the dynamic-range fields (n, es), mean-based
        for the shape fields (rs, sf); sf gets a small uniform perturbation
        (the paper's η(−10⁻³, 10⁻³) ball — the '10³' in Eq. 5 is read as a
        typo for 10⁻³, consistent with Step 1).
        """
        rng = self.rng
        n = _rand_int_between(rng, min(p1.n, p2.n) - 1, max(p1.n, p2.n) + 1)
        es = _rand_int_between(rng, min(p1.es, p2.es) - 1, max(p1.es, p2.es) + 1)
        rs = _rand_int_between(rng, 0, int(np.ceil((p1.rs + p2.rs) / 2.0)) + 1)
        sf = (p1.sf + p2.sf) / 2.0 + float(rng.uniform(-1e-3, 1e-3))
        return clamp_lp_params(n, es, rs, sf, self.config.hw_widths)

    def _make_child(
        self, p1: QuantSolution, p2: QuantSolution, block: range
    ) -> QuantSolution:
        """Regenerate `block` from both parents, copy the rest from p1."""
        params = list(p1.layer_params)
        for i in block:
            params[i] = self._regenerate_layer(p1[i], p2[i], self.centers[i])
        return QuantSolution(tuple(params))

    def _blocks(self) -> list[range]:
        b = self.config.block_size if self.config.blockwise else self.num_layers
        return [
            range(start, min(start + b, self.num_layers))
            for start in range(0, self.num_layers, b)
        ]

    # -- Steps 2-4 for one block ----------------------------------------
    def propose_step(self, block: range) -> list[QuantSolution]:
        """Generate one GA step's candidates: the Step-2 child first,
        then the Step-3 diversity children (all RNG, no evaluation).

        Generation order (and hence the RNG draw order) is identical to
        the historical serial step — candidates were always generated
        before any evaluation ran — so trajectories are independent of
        where (or in what order) the batch is eventually scored.
        """
        best, second = self.population[0][0], self.population[1][0]
        child = self._make_child(best, second, block)

        # Step 3: diversity-promoting selection
        diverse: list[QuantSolution] = []
        if self.config.diversity:
            for _ in range(self.config.diversity_parents):
                random_parent = random_solution(
                    self.rng, self.num_layers, self.centers,
                    self.config.hw_widths,
                )
                diverse.append(self._make_child(child, random_parent, block))
        return [child] + diverse

    def commit_step(
        self, candidates: list[QuantSolution], fits: list[float]
    ) -> None:
        """Step 4: population update from a scored :meth:`propose_step`
        batch (fits in proposal order: child first, then diversity)."""
        if len(fits) != len(candidates):
            raise ValueError(
                f"{len(fits)} fitness values for {len(candidates)} candidates"
            )
        child, diverse = candidates[0], candidates[1:]
        self.population.append((child, fits[0]))
        if diverse:
            scored = list(zip(diverse, fits[1:]))
            scored.sort(key=lambda item: item[1])
            self.population.append(scored[0])
        self.perf.counter("lpq.candidates").inc(len(candidates))
        self._rank()
        # bound population growth: keep the K fittest
        del self.population[self.config.population :]
        self.history.record(self.population[0][1], self.population[0][0])

    def step(self, block: range) -> None:
        """One batched GA step: generate the Step-2 child and all
        diversity children up front, then score them as one batch."""
        with self.perf.timer("lpq.step").time():
            cands = self.propose_step(block)
            fits = self._evaluate_batch(cands)
            self.commit_step(cands, fits)

    # -- full search ------------------------------------------------------
    def run(self) -> tuple[QuantSolution, float]:
        """P passes × blocks × C cycles; returns (best solution, fitness)."""
        with self.perf.timer("lpq.run").time():
            if not self.population:
                self.initialize()
            for _ in range(self.config.passes):
                for block in self._blocks():
                    for _ in range(self.config.cycles):
                        self.step(block)
        return self.population[0]

    # -- externally driven search ----------------------------------------
    def work_units(self):
        """Coroutine exposing the search as submittable candidate batches.

        Yields each batch of candidates the search wants scored (the
        Step-1 population first, then one batch per GA step) and expects
        the fitness list — in the yielded order — to be sent back::

            gen = engine.work_units()
            batch = next(gen)
            while True:
                try:
                    batch = gen.send([evaluate(s) for s in batch])
                except StopIteration:
                    break
            best_solution, best_fitness = engine.population[0]

        All engine RNG is drawn at generation time in exactly the order
        :meth:`run` draws it, so a driver may evaluate a batch anywhere
        — split into chunks across a shared worker pool, interleaved
        with batches from other searches — and the trajectory stays
        bitwise-identical to a standalone :meth:`run`.  This is the seam
        :class:`repro.serve.SearchScheduler` multiplexes many searches
        through one executor with.
        """
        if not self.population:
            sols = self.propose_initial()
            fits = yield sols
            self.commit_initial(sols, fits)
        for _ in range(self.config.passes):
            for block in self._blocks():
                for _ in range(self.config.cycles):
                    cands = self.propose_step(block)
                    fits = yield cands
                    self.commit_step(cands, fits)
