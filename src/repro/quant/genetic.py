"""LPQ's block-wise genetic search (paper Section 4, Steps 1-4).

The four steps:

1. **Candidate initialization** — K random Δ vectors, sf sampled in a
   small ball around each layer's weight-distribution centre.
2. **Re-generation** — the two fittest candidates parent a child; only a
   *block* of B consecutive layers is regenerated (Eqs. 2-5), all other
   layers copy the best parent.
3. **Diversity-promoting selection** — five random parents are each
   crossed with the Step-2 child; the best of those diverse children also
   enters the population, fighting premature convergence.
4. **Evaluation & population update** — fitness of all children computed,
   population extended, ranking by fitness.

The loop runs P passes over all blocks with C cycles per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..numerics import LPParams
from ..perf import get_perf
from .params import QuantSolution, clamp_lp_params, random_solution

__all__ = ["LPQConfig", "LPQEngine", "SearchHistory"]


@dataclass(frozen=True)
class LPQConfig:
    """Search hyper-parameters.  Paper defaults: K=20, P=10, C=4, B=4
    (CNNs) or one attention block (ViTs); five diversity parents.

    ``hw_widths`` restricts n to LPA-packable widths (Section 5.1
    constrains the LPQ search space of n to integer powers of 2 for
    hardware execution).  ``diversity``/``blockwise`` are ablation
    switches for the Step-3 and block-regeneration design choices.
    """

    population: int = 20  # K
    passes: int = 10  # P
    cycles: int = 4  # C
    block_size: int = 4  # B
    diversity_parents: int = 5
    hw_widths: tuple[int, ...] | None = (2, 4, 8)
    diversity: bool = True
    blockwise: bool = True
    seed: int = 0


@dataclass
class SearchHistory:
    """Best fitness and solution after every population update."""

    best_fitness: list[float] = field(default_factory=list)
    mean_bits: list[float] = field(default_factory=list)

    def record(self, fitness: float, solution: QuantSolution) -> None:
        self.best_fitness.append(fitness)
        self.mean_bits.append(solution.mean_weight_bits())


def _rand_int_between(rng: np.random.Generator, lo: int, hi: int) -> int:
    """Uniform integer in [lo, hi] (inclusive), tolerating lo > hi."""
    if lo > hi:
        lo, hi = hi, lo
    return int(rng.integers(lo, hi + 1))


class LPQEngine:
    """Runs the genetic search against a fitness evaluator.

    ``evaluator(solution)`` must return a scalar (lower = fitter); see
    :class:`repro.quant.fitness.FitnessEvaluator`.
    """

    def __init__(
        self,
        evaluator,
        layer_log_centers: list[float],
        config: LPQConfig | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.centers = list(layer_log_centers)
        self.config = config or LPQConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.num_layers = len(self.centers)
        self.population: list[tuple[QuantSolution, float]] = []
        self.history = SearchHistory()
        self.perf = get_perf()

    # -- evaluation -----------------------------------------------------
    def _evaluate_batch(self, solutions: list[QuantSolution]) -> list[float]:
        """Score a batch of candidates, results in submission order.

        Evaluators exposing ``evaluate_many`` (the incremental evaluators
        and :class:`repro.parallel.PopulationEvaluator`) receive the whole
        batch at once — duplicates are deduped against their memo and the
        rest fanned out across executor workers; plain callables are
        scored serially.  Either way the returned order matches the
        submitted order, so trajectories are backend-independent.
        """
        evaluate_many = getattr(self.evaluator, "evaluate_many", None)
        if evaluate_many is not None:
            fits = list(evaluate_many(solutions))
            if len(fits) != len(solutions):
                raise ValueError(
                    f"evaluate_many returned {len(fits)} results for "
                    f"{len(solutions)} candidates"
                )
            return fits
        return [self.evaluator(sol) for sol in solutions]

    # -- Step 1 ---------------------------------------------------------
    def initialize(self) -> None:
        """Sample K candidates and pre-compute their fitness.

        All candidates are generated up front (the evaluator draws no
        engine RNG, so the draw order is unchanged) and scored as one
        batch.
        """
        with self.perf.timer("lpq.initialize").time():
            sols = [
                random_solution(
                    self.rng, self.num_layers, self.centers, self.config.hw_widths
                )
                for _ in range(self.config.population)
            ]
            self.population = list(zip(sols, self._evaluate_batch(sols)))
        self.perf.counter("lpq.candidates").inc(self.config.population)
        self._rank()
        best_sol, best_fit = self.population[0]
        self.history.record(best_fit, best_sol)

    def _rank(self) -> None:
        self.population.sort(key=lambda item: item[1])

    # -- Step 2 ---------------------------------------------------------
    def _regenerate_layer(
        self, p1: LPParams, p2: LPParams, center: float
    ) -> LPParams:
        """Child layer parameters from two parents (Eqs. 2-5).

        min/max±1 ranges for the dynamic-range fields (n, es), mean-based
        for the shape fields (rs, sf); sf gets a small uniform perturbation
        (the paper's η(−10⁻³, 10⁻³) ball — the '10³' in Eq. 5 is read as a
        typo for 10⁻³, consistent with Step 1).
        """
        rng = self.rng
        n = _rand_int_between(rng, min(p1.n, p2.n) - 1, max(p1.n, p2.n) + 1)
        es = _rand_int_between(rng, min(p1.es, p2.es) - 1, max(p1.es, p2.es) + 1)
        rs = _rand_int_between(rng, 0, int(np.ceil((p1.rs + p2.rs) / 2.0)) + 1)
        sf = (p1.sf + p2.sf) / 2.0 + float(rng.uniform(-1e-3, 1e-3))
        return clamp_lp_params(n, es, rs, sf, self.config.hw_widths)

    def _make_child(
        self, p1: QuantSolution, p2: QuantSolution, block: range
    ) -> QuantSolution:
        """Regenerate `block` from both parents, copy the rest from p1."""
        params = list(p1.layer_params)
        for i in block:
            params[i] = self._regenerate_layer(p1[i], p2[i], self.centers[i])
        return QuantSolution(tuple(params))

    def _blocks(self) -> list[range]:
        b = self.config.block_size if self.config.blockwise else self.num_layers
        return [
            range(start, min(start + b, self.num_layers))
            for start in range(0, self.num_layers, b)
        ]

    # -- Steps 2-4 for one block ----------------------------------------
    def step(self, block: range) -> None:
        """One batched GA step: generate the Step-2 child and all
        diversity children up front, then score them as one batch.

        Generation order (and hence the RNG draw order) is identical to
        the historical serial step — candidates were always generated
        before any evaluation ran — so serial trajectories are bitwise
        reproductions of the pre-batched engine, while parallel backends
        get the whole population slice at once (the diversity children
        are embarrassingly parallel).
        """
        with self.perf.timer("lpq.step").time():
            best, second = self.population[0][0], self.population[1][0]
            child = self._make_child(best, second, block)

            # Step 3: diversity-promoting selection
            diverse: list[QuantSolution] = []
            if self.config.diversity:
                for _ in range(self.config.diversity_parents):
                    random_parent = random_solution(
                        self.rng, self.num_layers, self.centers,
                        self.config.hw_widths,
                    )
                    diverse.append(self._make_child(child, random_parent, block))

            # Step 4: evaluation and population update
            fits = self._evaluate_batch([child] + diverse)
            self.population.append((child, fits[0]))
            if diverse:
                scored = list(zip(diverse, fits[1:]))
                scored.sort(key=lambda item: item[1])
                self.population.append(scored[0])
            self.perf.counter("lpq.candidates").inc(1 + len(diverse))
            self._rank()
            # bound population growth: keep the K fittest
            del self.population[self.config.population :]
            self.history.record(self.population[0][1], self.population[0][0])

    # -- full search ------------------------------------------------------
    def run(self) -> tuple[QuantSolution, float]:
        """P passes × blocks × C cycles; returns (best solution, fitness)."""
        with self.perf.timer("lpq.run").time():
            if not self.population:
                self.initialize()
            for _ in range(self.config.passes):
                for block in self._blocks():
                    for _ in range(self.config.cycles):
                        self.step(block)
        return self.population[0]
