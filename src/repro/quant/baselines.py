"""Baseline PTQ with other number formats (min-max calibration).

Used by the Fig. 5(b) format comparison and Table 1/2 context rows: every
format family from :mod:`repro.numerics` is calibrated per layer and
fake-quantized into the model exactly like LP, so accuracy comparisons
isolate the *format*, not the pipeline.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

import numpy as np

from ..nn import Module, quantizable_layers
from ..numerics import calibrated_format

__all__ = ["quantize_with_family", "per_layer_rmse"]


@contextlib.contextmanager
def quantize_with_family(
    model: Module, family: str, weight_bits: int, act_bits: int | None = None
) -> Iterator[Module]:
    """Fake-quantize all layer weights (and optionally inputs) with a
    calibrated format of ``family`` at the given bit-widths."""
    layers = quantizable_layers(model)
    try:
        for i, (_, layer) in enumerate(layers):
            w = layer.weight.data
            fmt = calibrated_format(family, w, weight_bits)
            layer.weight_fq = fmt.quantize(w).astype(w.dtype)
            if act_bits is not None and i > 0:
                layer.input_fq = _act_quantizer(family, act_bits)
        yield model
    finally:
        for _, layer in layers:
            layer.clear_quant()


def _act_quantizer(family: str, bits: int):
    def quantize(x: np.ndarray) -> np.ndarray:
        fmt = calibrated_format(family, x, bits)
        return fmt.quantize(x).astype(x.dtype)

    return quantize


def per_layer_rmse(model: Module, family: str, bits: int) -> dict[str, float]:
    """RMSE of weight quantization per layer for one format family."""
    out: dict[str, float] = {}
    for name, layer in quantizable_layers(model):
        w = np.asarray(layer.weight.data, dtype=np.float64)
        fmt = calibrated_format(family, w, bits)
        out[name] = float(np.sqrt(np.mean((w - fmt.quantize(w)) ** 2)))
    return out
