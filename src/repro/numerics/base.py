"""Common abstractions for number formats used in DNN quantization.

Every format in :mod:`repro.numerics` implements :class:`NumberFormat`:
a value-set on the real line plus a ``quantize`` projection onto it.
Formats that model a concrete bit layout additionally expose
``encode``/``decode`` between real values and integer bit patterns so the
hardware model in :mod:`repro.accel` can operate on actual fields.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "NumberFormat",
    "BitLevelFormat",
    "QuantizationStats",
    "quantization_rmse",
    "relative_decimal_accuracy",
]


class NumberFormat(abc.ABC):
    """A finite set of representable reals with a round-to-nearest projection."""

    #: total storage width in bits (used for compression-ratio accounting)
    bits: int

    @abc.abstractmethod
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Project ``x`` element-wise onto the nearest representable value."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable identifier, e.g. ``"lp<8,2,3,0.0>"``."""

    def dynamic_range(self) -> tuple[float, float]:
        """(min positive, max positive) representable magnitudes."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class BitLevelFormat(NumberFormat):
    """A format with an explicit bit layout.

    ``encode`` maps reals to unsigned integer bit patterns of width
    ``self.bits``; ``decode`` is its exact inverse on representable values.

    Formats whose encoder rounds in the log domain over a sign-symmetric
    positive value table (posits and their LP relatives) can return that
    table from :meth:`_lut` to get a fused ``quantize``: reals map
    straight to representable values through one ``searchsorted``,
    skipping the encode→decode round trip while staying bitwise
    identical to it (the table values *are* the decode outputs).
    """

    @abc.abstractmethod
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` to the format and return the integer bit patterns."""

    @abc.abstractmethod
    def decode(self, pattern: np.ndarray) -> np.ndarray:
        """Map integer bit patterns back to their real values."""

    def _lut(self):
        """Value table enabling the fused quantize path (or None).

        When not None, must be a :class:`repro.numerics.posit.PositTable`
        (or duck-type its ``values``/``project``): sorted positive
        representable values equal to the decode outputs bit-for-bit,
        with a projection matching the rounding rule used by ``encode``.
        """
        return None

    def quantize(self, x: np.ndarray) -> np.ndarray:
        table = self._lut()
        if table is None:
            return self.decode(self.encode(x))
        x = np.asarray(x, dtype=np.float64)
        mag = np.abs(x)
        out = np.zeros(x.shape, dtype=np.float64)
        pos = mag > 0  # excludes zeros and NaNs
        out[pos] = table.values[table.project(mag[pos])]
        out = np.where(x < 0, -out, out)
        out[np.isnan(x)] = np.nan
        return out

    def all_patterns(self) -> np.ndarray:
        """Every bit pattern of width ``self.bits`` (for exhaustive checks)."""
        return np.arange(1 << self.bits, dtype=np.int64)

    def all_values(self) -> np.ndarray:
        """The complete representable value set, sorted ascending."""
        return np.sort(np.unique(self.decode(self.all_patterns())))


@dataclass(frozen=True)
class QuantizationStats:
    """Summary statistics of the error introduced by quantizing a tensor."""

    rmse: float
    max_abs_err: float
    mean_rel_err: float
    sqnr_db: float

    @staticmethod
    def from_tensors(x: np.ndarray, xq: np.ndarray) -> "QuantizationStats":
        x = np.asarray(x, dtype=np.float64)
        xq = np.asarray(xq, dtype=np.float64)
        err = x - xq
        rmse = float(np.sqrt(np.mean(err**2)))
        max_abs = float(np.max(np.abs(err))) if err.size else 0.0
        nz = np.abs(x) > 0
        rel = float(np.mean(np.abs(err[nz]) / np.abs(x[nz]))) if nz.any() else 0.0
        sig = float(np.sum(x**2))
        noise = float(np.sum(err**2))
        sqnr = float(10.0 * np.log10(sig / noise)) if noise > 0 and sig > 0 else np.inf
        return QuantizationStats(rmse, max_abs, rel, sqnr)


def quantization_rmse(fmt: NumberFormat, x: np.ndarray) -> float:
    """Root-mean-squared quantization error of ``fmt`` on tensor ``x``."""
    xq = fmt.quantize(np.asarray(x, dtype=np.float64))
    return float(np.sqrt(np.mean((np.asarray(x, dtype=np.float64) - xq) ** 2)))


def relative_decimal_accuracy(fmt: NumberFormat, magnitudes: np.ndarray) -> np.ndarray:
    """Relative decimal accuracy, the y-axis of the paper's Fig. 1(b).

    For each magnitude ``m`` the accuracy is ``-log10(|log10(q/m)|)`` where
    ``q`` is the nearest representable value — i.e. the number of correct
    decimal digits of the closest code point.  Larger is better; posits show
    the characteristic tapered "tent" shape, floats a flat plateau.
    """
    m = np.asarray(magnitudes, dtype=np.float64)
    q = fmt.quantize(m)
    out = np.full(m.shape, 0.0)
    ok = (q > 0) & (m > 0)
    ratio = np.ones_like(m)
    ratio[ok] = q[ok] / m[ok]
    logerr = np.abs(np.log10(ratio, where=ratio > 0, out=np.zeros_like(ratio)))
    exact = ok & (logerr == 0)
    inexact = ok & (logerr > 0)
    out[inexact] = -np.log10(logerr[inexact])
    out[exact] = 16.0  # indistinguishable from exact in double precision
    out[~ok] = 0.0
    return out
