"""Parametric IEEE-754-style small floats (e.g. FP8-E4M3, FP6, FP4).

``MiniFloatFormat(n, ebits, bias)`` has 1 sign bit, ``ebits`` exponent
bits and ``n - 1 - ebits`` mantissa bits.  Subnormals are supported; the
top exponent code is kept *finite* (no inf/NaN codes), as is standard in
DNN inference formats — all patterns spend on representable values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import NumberFormat

__all__ = ["MiniFloatFormat"]


@dataclass(frozen=True)
class MiniFloatFormat(NumberFormat):
    n: int
    ebits: int
    bias: int | None = None  # default: IEEE bias 2^(ebits-1) - 1

    def __post_init__(self) -> None:
        if self.n < 2 or not 1 <= self.ebits <= self.n - 1:
            raise ValueError(f"invalid minifloat n={self.n} ebits={self.ebits}")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.n

    @property
    def mbits(self) -> int:
        return self.n - 1 - self.ebits

    @property
    def exp_bias(self) -> int:
        return self.bias if self.bias is not None else (1 << (self.ebits - 1)) - 1

    @property
    def name(self) -> str:
        return f"fp<{self.n},e{self.ebits},b{self.exp_bias}>"

    def dynamic_range(self) -> tuple[float, float]:
        min_sub = np.exp2(1 - self.exp_bias - self.mbits)
        emax = (1 << self.ebits) - 1 - self.exp_bias
        maxval = np.exp2(emax) * (2.0 - np.exp2(-self.mbits))
        return float(min_sub), float(maxval)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        nz = x != 0
        mag = np.abs(x[nz])
        emin = 1 - self.exp_bias  # smallest normal exponent
        e = np.floor(np.log2(mag))
        e = np.maximum(e, emin)  # below emin -> subnormal grid
        step = np.exp2(e - self.mbits)
        q = np.round(mag / step) * step
        # rounding may carry into the next binade; that is already on-grid
        _, maxval = self.dynamic_range()
        q = np.minimum(q, maxval)
        out[nz] = np.sign(x[nz]) * q
        return out
