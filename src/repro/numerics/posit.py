"""Standard posit arithmetic (Gustafson & Yonemoto 2017), bit-accurate.

A posit⟨n, es⟩ packs ``sign | regime | exponent(es) | fraction`` where the
regime is run-length encoded: a run of ``m`` identical bits terminated by the
opposite bit (or the end of the word) encodes ``k = m - 1`` for runs of ones
and ``k = -m`` for runs of zeros.  The represented value is::

    x = (-1)^s * 2^(2^es * k + e) * (1 + f)

Negative numbers are the two's complement of the positive pattern.  The
all-zeros pattern is 0 and ``1 0...0`` is NaR (decoded as NaN).

``decode`` is the bit-accurate ground truth; ``encode`` projects reals onto
the format through a cached value table (posits up to 16 bits have at most
65536 code points, so exhaustive tables are cheap and exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np

from .base import BitLevelFormat

__all__ = ["PositFormat", "posit_decode", "posit_encode"]


def _decode_core(pattern: np.ndarray, n: int, es: int, max_regime: int) -> np.ndarray:
    """Shared posit/LP-style decode of ``sign|regime|...`` bit patterns.

    Returns the real values for standard posits (``max_regime = n - 1``).
    ``max_regime`` caps the regime field length, which is how Logarithmic
    Posits parameterize tapering; standard posits use the full word.
    """
    p = np.asarray(pattern, dtype=np.int64) & ((1 << n) - 1)
    out = np.zeros(p.shape, dtype=np.float64)
    zero = p == 0
    nar = p == (1 << (n - 1))

    sign = (p >> (n - 1)) & 1
    mag = np.where(sign == 1, ((1 << n) - p) & ((1 << n) - 1), p)
    body = mag & ((1 << (n - 1)) - 1)  # the n-1 bits after the sign

    nb = n - 1
    first = (body >> (nb - 1)) & 1 if nb >= 1 else np.zeros_like(body)
    # run length of the leading bit, capped at max_regime
    run = np.zeros_like(body)
    still = np.ones(body.shape, dtype=bool)
    for i in range(min(nb, max_regime)):
        bit = (body >> (nb - 1 - i)) & 1
        match = still & (bit == first)
        run += match.astype(np.int64)
        still = match
    consumed = np.minimum(run + 1, min(nb, max_regime))
    k = np.where(first == 1, run - 1, -run)

    remaining = nb - consumed
    rem_bits = body & ((np.int64(1) << remaining) - 1)
    e_avail = np.minimum(remaining, es)
    # exponent bits sit at the top of the remaining field; missing low
    # exponent bits are implicitly zero (posit standard truncation rule)
    e = (rem_bits >> (remaining - e_avail)) << (es - e_avail)
    f_bits = remaining - e_avail
    f_int = rem_bits & ((np.int64(1) << f_bits) - 1)
    frac = f_int.astype(np.float64) / np.exp2(f_bits.astype(np.float64))

    scale = (np.exp2(es) * k + e).astype(np.float64)
    val = np.exp2(scale) * (1.0 + frac)
    out = np.where(sign == 1, -val, val)
    out[zero] = 0.0
    out[nar] = np.nan
    return out


def posit_decode(pattern: np.ndarray, n: int, es: int) -> np.ndarray:
    """Decode standard posit⟨n, es⟩ bit patterns to float64 values."""
    if not 2 <= n <= 16:
        raise ValueError(f"posit width must be in [2, 16], got {n}")
    if es < 0:
        raise ValueError("es must be non-negative")
    return _decode_core(pattern, n, es, max_regime=n - 1)


class PositTable(NamedTuple):
    """Exhaustive value table of a posit-style format's positive half.

    ``midpoints`` (rounding thresholds between adjacent code points, in
    the log domain) are precomputed once so the encode/quantize hot path
    is a single ``searchsorted`` with no per-call ``log2`` over the table.
    """

    values: np.ndarray  # sorted positive representable values
    patterns: np.ndarray  # bit patterns matching ``values``
    midpoints: np.ndarray  # log-domain rounding midpoints (len - 1)

    @classmethod
    def build(cls, values: np.ndarray, patterns: np.ndarray) -> "PositTable":
        """Sort the (value, pattern) pairs and derive the log-domain
        rounding midpoints — the one place the midpoint rule lives."""
        order = np.argsort(values, kind="stable")
        values, patterns = values[order], patterns[order]
        logv = np.log2(values)
        mids = 0.5 * (logv[:-1] + logv[1:])
        return cls(values, patterns, mids)

    def project(self, mag: np.ndarray) -> np.ndarray:
        """Indices of the nearest representable values for positive
        magnitudes: clamp to the table range, then round to nearest in
        the log domain — where the LP/posit hardware rounds, so the
        selected neighbour minimizes *relative* error.

        The single shared projection behind ``encode`` and the fused
        ``quantize`` paths; its clamp/round rule is what keeps them
        bitwise identical.
        """
        clipped = np.clip(mag, self.values[0], self.values[-1])
        return np.searchsorted(self.midpoints, np.log2(clipped), side="left")


#: Process-wide LUT registry shared by every evaluator replica in this
#: process: format params → built :class:`PositTable`.  One worker running
#: many replicas (thread pool, shared process pool serving several jobs)
#: builds each table exactly once; reuse shows up as hits on the
#: ``numerics.lut_cache`` stats of the ambient perf registry.
_LUT_REGISTRY: dict[tuple, PositTable] = {}


def _lut_stats():
    from ..perf import get_perf  # deferred: numerics must import standalone

    return get_perf().cache("numerics.lut_cache")


def _registered_table(key: tuple, build: Callable[[], PositTable]) -> PositTable:
    """Look ``key`` up in the process-wide LUT registry, building (and
    counting a miss) only on first use anywhere in the process."""
    table = _LUT_REGISTRY.get(key)
    if table is not None:
        _lut_stats().hit()
        return table
    _lut_stats().miss()
    table = _LUT_REGISTRY[key] = build()
    return table


def _positive_table(n: int, es: int, max_regime: int) -> PositTable:
    """Registry-cached :class:`PositTable` for a posit-style format."""

    def build() -> PositTable:
        patterns = np.arange(1, 1 << (n - 1), dtype=np.int64)  # positive codes
        values = _decode_core(patterns, n, es, max_regime)
        return PositTable.build(values, patterns)

    return _registered_table(("posit", n, es, max_regime), build)


def posit_encode(x: np.ndarray, n: int, es: int) -> np.ndarray:
    """Round reals to posit⟨n, es⟩ and return the bit patterns.

    NaN inputs encode to the NaR pattern (``1 0...0``); zeros to the zero
    pattern; magnitudes beyond the dynamic range clamp to minpos/maxpos
    (posit semantics: no underflow to zero, no overflow to infinity).
    """
    x = np.asarray(x, dtype=np.float64)
    table = _positive_table(n, es, n - 1)
    mag = np.abs(x)
    full = np.zeros(x.shape, dtype=np.int64)
    pos = mag > 0  # excludes zeros and NaNs
    full[pos] = table.patterns[table.project(mag[pos])]
    neg = x < 0
    full[neg] = ((1 << n) - full[neg]) & ((1 << n) - 1)
    full[np.isnan(x)] = 1 << (n - 1)  # NaR
    return full


@dataclass(frozen=True)
class PositFormat(BitLevelFormat):
    """Standard posit⟨n, es⟩ as a :class:`NumberFormat`."""

    n: int
    es: int

    def __post_init__(self) -> None:
        if not 2 <= self.n <= 16:
            raise ValueError(f"posit width must be in [2, 16], got {self.n}")
        if self.es < 0:
            raise ValueError("es must be non-negative")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.n

    @property
    def name(self) -> str:
        return f"posit<{self.n},{self.es}>"

    def encode(self, x: np.ndarray) -> np.ndarray:
        return posit_encode(x, self.n, self.es)

    def decode(self, pattern: np.ndarray) -> np.ndarray:
        return posit_decode(pattern, self.n, self.es)

    def _lut(self) -> PositTable:
        return _positive_table(self.n, self.es, self.n - 1)

    def dynamic_range(self) -> tuple[float, float]:
        values = self._lut().values
        return float(values[0]), float(values[-1])
