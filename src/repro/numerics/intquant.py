"""Uniform integer / fixed-point quantization (the INT baseline)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import NumberFormat

__all__ = ["IntFormat"]


@dataclass(frozen=True)
class IntFormat(NumberFormat):
    """Symmetric uniform quantizer: ``q = clamp(round(x / scale)) * scale``.

    ``n``-bit two's-complement codes in ``[-(2^(n-1)), 2^(n-1) - 1]``.
    """

    n: int
    scale: float

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("integer quantization needs >= 2 bits")
        if not self.scale > 0:
            raise ValueError("scale must be positive")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.n

    @property
    def name(self) -> str:
        return f"int<{self.n},s={self.scale:.4g}>"

    @property
    def qmin(self) -> int:
        return -(1 << (self.n - 1))

    @property
    def qmax(self) -> int:
        return (1 << (self.n - 1)) - 1

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        q = np.clip(np.round(x / self.scale), self.qmin, self.qmax)
        return q * self.scale

    def dynamic_range(self) -> tuple[float, float]:
        return self.scale, self.qmax * self.scale

    @staticmethod
    def for_tensor(x: np.ndarray, n: int) -> "IntFormat":
        """Min-max symmetric calibration (scale = max|x| / qmax)."""
        amax = float(np.max(np.abs(np.asarray(x, dtype=np.float64))))
        if amax <= 0:
            amax = 1.0
        return IntFormat(n=n, scale=amax / ((1 << (n - 1)) - 1))
