"""flint — ANT's adaptive float-int data type (Guo et al., MICRO 2022).

flint morphs between float and int across its range: values near zero get
int-like uniform resolution (long mantissa, no exponent) and large values
get float-like relative resolution (leading-1-coded exponent, short
mantissa).  The exponent is encoded as a unary prefix (count of leading
zeros before the first 1), so exponent and mantissa trade off dynamically —
the same run-length idea posits use, but without posit's ``es`` field.

This model reproduces flint's *value set*: for an ``n``-bit flint with
per-tensor scale ``s``, the positive codes are::

    exponent field e (unary, value 0..n-2), mantissa m of width n-2-e(+impl)

following the MICRO'22 construction where total width is constant and the
binade at exponent ``e`` has ``n - 2 - max(e - 1, 0)`` mantissa bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .base import NumberFormat

__all__ = ["FlintFormat"]


@lru_cache(maxsize=64)
def _flint_positive_values(n: int) -> np.ndarray:
    """Sorted positive value set of unit-scale n-bit flint."""
    values: list[float] = []
    body = n - 1  # bits after sign
    # e = 0: pure int binade, mantissa occupies all body bits minus the
    # single '1' terminator -> uniform values in [0, 1).
    for e in range(body):
        mbits = body - 1 - e  # unary exponent prefix consumes e zeros + '1'
        if mbits < 0:
            break
        base = 0.0 if e == 0 else float(np.exp2(e - 1))
        width = float(np.exp2(max(e - 1, 0)))  # binade [2^(e-1), 2^e)
        if e == 0:
            width = 1.0
        for m in range(1 << mbits):
            values.append(base + width * m / (1 << mbits))
    arr = np.unique(np.asarray(values, dtype=np.float64))
    return arr[arr >= 0]


@dataclass(frozen=True)
class FlintFormat(NumberFormat):
    n: int
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError("flint needs >= 3 bits")
        if not self.scale > 0:
            raise ValueError("scale must be positive")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.n

    @property
    def name(self) -> str:
        return f"flint<{self.n},s={self.scale:.4g}>"

    def _values(self) -> np.ndarray:
        return _flint_positive_values(self.n) * self.scale

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        vals = self._values()
        mids = 0.5 * (vals[:-1] + vals[1:])
        mag = np.abs(x)
        idx = np.searchsorted(mids, np.clip(mag, vals[0], vals[-1]), side="left")
        return np.sign(x) * vals[idx]

    def dynamic_range(self) -> tuple[float, float]:
        vals = self._values()
        pos = vals[vals > 0]
        return float(pos[0]), float(pos[-1])

    @staticmethod
    def for_tensor(x: np.ndarray, n: int) -> "FlintFormat":
        """Scale so the top flint binade covers max|x|."""
        amax = float(np.max(np.abs(np.asarray(x, dtype=np.float64))))
        if amax <= 0:
            amax = 1.0
        top = float(_flint_positive_values(n)[-1])
        return FlintFormat(n=n, scale=amax / top)
