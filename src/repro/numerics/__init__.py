"""Number-format substrate: posits, LP, LNS, floats, ints, flint.

The paper's core data type is :class:`LogPositFormat` (LP); every other
format here is either one of LP's primitives (posit, LNS) or a baseline
the paper compares against (INT, minifloat, AdaptivFloat, ANT's flint).
"""

from .adaptivfloat import AdaptivFloatFormat
from .base import (
    BitLevelFormat,
    NumberFormat,
    QuantizationStats,
    quantization_rmse,
    relative_decimal_accuracy,
)
from .flint import FlintFormat
from .intquant import IntFormat
from .lns import LNSFormat
from .logposit import (
    LogPositFormat,
    LPParams,
    lp_decode,
    lp_encode,
    lp_quantize,
    lp_quantize_many,
)
from .minifloat import MiniFloatFormat
from .posit import PositFormat, posit_decode, posit_encode
from .registry import (
    FORMAT_FAMILIES,
    calibrated_format,
    make_format,
    tensor_log_center,
)

__all__ = [
    "AdaptivFloatFormat",
    "BitLevelFormat",
    "FlintFormat",
    "FORMAT_FAMILIES",
    "IntFormat",
    "LNSFormat",
    "LogPositFormat",
    "LPParams",
    "MiniFloatFormat",
    "NumberFormat",
    "PositFormat",
    "QuantizationStats",
    "calibrated_format",
    "lp_decode",
    "lp_encode",
    "lp_quantize",
    "lp_quantize_many",
    "make_format",
    "posit_decode",
    "posit_encode",
    "quantization_rmse",
    "tensor_log_center",
    "relative_decimal_accuracy",
]
