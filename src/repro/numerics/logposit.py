"""LP — the Logarithmic Posit data type (paper Section 3, Eq. 1).

LP is a posit with every bit field parameterized, whose exponent and
fraction are fused into one log-domain fixed-point field::

    x<n, es, rs, sf> = (-1)^sign * 2^(2^es * k - sf) * 2^ulfx      (Eq. 1)

where

* ``n``  — total width (bits), controls precision / compression,
* ``es`` — exponent size; each increment doubles the dynamic range,
* ``rs`` — maximum regime field length; controls the *tapering* (shape),
* ``sf`` — continuous scale-factor bias; shifts the region of maximum
  accuracy away from magnitude 1 (standard posits have ``sf = 0``),
* ``k``  — regime value from the run-length encoded regime field,
* ``ulfx`` — Unified Logarithmic Fraction and eXponent: a fixed-point
  number in ``[0, 2^es)`` whose integer part is the exponent ``e`` and
  whose fractional part is ``f' = log2(1.f)``.

Because the fraction is stored in the log domain, a hardware multiply is
just a fixed-point add (LNS efficiency), and rounding happens in the log
domain — both are modelled faithfully here.

Bit layout (mirrors standard posit, negatives are two's complement)::

    sign(1) | regime(run-length, <= rs bits) | ulfx integer+fraction

The ``sf`` bias does not occupy bits; it is a per-tensor parameter held by
the decoder (paper Fig. 3 feeds ``sf`` into the regime constructor).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .base import BitLevelFormat
from .posit import PositTable, _decode_core, _registered_table

__all__ = [
    "LPParams",
    "LogPositFormat",
    "lp_decode",
    "lp_encode",
    "lp_quantize",
    "lp_quantize_many",
]

#: Search-space bounds used by LPQ (paper Section 4, Step 1).
N_MIN, N_MAX = 2, 8
ES_MIN = 0
RS_MIN = 2


@dataclass(frozen=True)
class LPParams:
    """The four LP parameters ⟨n, es, rs, sf⟩ of one tensor/layer.

    Constraints (paper Section 3): ``es <= n - 3`` (1 sign + >=2 regime
    bits must remain) and ``2 <= rs <= n - 1``.  Narrow widths where the
    constraints cannot all hold (n = 2, 3) clamp ``rs``/``es`` to the
    feasible range instead of failing, matching the hardware's behaviour
    of simply having no bits left for the constrained field.
    """

    n: int
    es: int
    rs: int
    sf: float = 0.0

    def __post_init__(self) -> None:
        if not N_MIN <= self.n <= 16:
            raise ValueError(f"LP width must be in [{N_MIN}, 16], got {self.n}")
        if self.es < 0 or self.rs < 1:
            raise ValueError(f"invalid LP fields es={self.es} rs={self.rs}")

    @property
    def es_eff(self) -> int:
        """Exponent size actually usable at this width (``<= n - 3``, >= 0)."""
        return min(self.es, max(self.n - 3, 0))

    @property
    def rs_eff(self) -> int:
        """Regime cap actually usable at this width (``<= n - 1``)."""
        return max(1, min(self.rs, self.n - 1))

    def clamped(self) -> "LPParams":
        """Return a copy with ``es``/``rs`` clamped into the feasible range."""
        return replace(self, es=self.es_eff, rs=self.rs_eff)

    @staticmethod
    def random(rng: np.random.Generator, n: int | None = None) -> "LPParams":
        """Sample uniformly from the LPQ search space (sf ~ U(-1e-3, 1e-3))."""
        n = int(rng.integers(N_MIN, N_MAX + 1)) if n is None else n
        es = int(rng.integers(0, max(n - 3, 0) + 1))
        rs = int(rng.integers(RS_MIN, max(n - 1, RS_MIN) + 1))
        sf = float(rng.uniform(-1e-3, 1e-3))
        return LPParams(n=n, es=es, rs=rs, sf=sf)


def lp_decode(pattern: np.ndarray, params: LPParams) -> np.ndarray:
    """Decode LP bit patterns to float64 values (Eq. 1).

    The shared posit decode core already interprets the post-regime bits as
    ``e`` (es-bit integer) and ``f`` with value ``2^e * (1 + f)``; LP instead
    means ``2^(e + f')`` with ``f'`` the *log-domain* fraction.  We therefore
    decode structurally with the core and fix up the fraction semantics:
    ``(1 + f) -> 2^(f)``.
    """
    p = params.clamped()
    lin = _decode_core(pattern, p.n, p.es_eff, max_regime=p.rs_eff)
    sign = np.sign(lin)
    mag = np.abs(lin)
    out = np.zeros_like(mag)
    ok = (mag > 0) & np.isfinite(mag)
    # mag = 2^scale * (1 + f); recover 2^scale (a power of two) and f, then
    # reinterpret f as the log-domain fraction f' so value = 2^(scale + f').
    exp2 = np.zeros_like(mag)
    frac = np.zeros_like(mag)
    exp2[ok] = np.floor(np.log2(mag[ok]))
    frac[ok] = mag[ok] / np.exp2(exp2[ok]) - 1.0
    # computed as (sf=0 value) * 2^-sf — not exp2(e + f' - sf) — so decode
    # is bitwise consistent with the table-based lp_quantize fast path
    out[ok] = np.exp2(exp2[ok] + frac[ok]) * np.exp2(-p.sf)
    out = sign * out
    out[np.isnan(lin)] = np.nan
    return out


def _lp_positive_table(n: int, es: int, rs: int) -> PositTable:
    """Registry-cached :class:`PositTable` of an LP format's sf=0
    positive half (process-wide, shared across evaluator replicas)."""

    def build() -> PositTable:
        base = LPParams(n=n, es=es, rs=rs, sf=0.0)
        patterns = np.arange(1, 1 << (n - 1), dtype=np.int64)
        values = lp_decode(patterns, base)
        return PositTable.build(values, patterns)

    return _registered_table(("lp", n, es, rs), build)


def lp_encode(x: np.ndarray, params: LPParams) -> np.ndarray:
    """Round reals to LP⟨n, es, rs, sf⟩ and return the bit patterns.

    Rounding is performed in the log domain (round-to-nearest ``ulfx``),
    exactly what the LPA datapath does.  Magnitudes outside the dynamic
    range clamp to minpos/maxpos — posit semantics: no underflow to zero,
    no overflow to infinity.  NaN encodes to the NaR pattern.
    """
    p = params.clamped()
    x = np.asarray(x, dtype=np.float64)
    table = _lp_positive_table(p.n, p.es_eff, p.rs_eff)
    # sf only rescales the whole value set: search in the sf=0 table.
    mag = np.abs(x) * np.exp2(p.sf)
    out = np.zeros(x.shape, dtype=np.int64)
    pos = mag > 0  # excludes zeros and NaNs
    out[pos] = table.patterns[table.project(mag[pos])]
    neg = x < 0
    out[neg] = ((1 << p.n) - out[neg]) & ((1 << p.n) - 1)
    out[np.isnan(x)] = 1 << (p.n - 1)  # NaR
    return out


def lp_quantize(x: np.ndarray, params: LPParams) -> np.ndarray:
    """Project ``x`` onto the LP⟨n, es, rs, sf⟩ value set.

    Fused table lookup — one log-domain ``searchsorted`` against the
    cached sf=0 table, bitwise identical to ``decode(encode(x))``.
    """
    p = params.clamped()
    x = np.asarray(x, dtype=np.float64)
    table = _lp_positive_table(p.n, p.es_eff, p.rs_eff)
    scaled = np.abs(x) * np.exp2(p.sf)
    out = np.zeros(x.shape, dtype=np.float64)
    pos = scaled > 0
    out[pos] = table.values[table.project(scaled[pos])] * np.exp2(-p.sf)
    out = np.where(x < 0, -out, out)
    out[np.isnan(x)] = np.nan
    return out


def lp_quantize_many(
    tensors: list[np.ndarray], params_list: list[LPParams]
) -> list[np.ndarray]:
    """Quantize many ``(tensor, params)`` pairs with shared LUT passes.

    Pairs whose clamped ⟨n, es, rs⟩ share an sf=0 table are grouped and
    projected through **one** ``searchsorted`` over their concatenated
    magnitudes; ``sf`` only rescales each segment by the scalars
    ``2^sf`` / ``2^-sf`` before/after the shared pass.  Because
    :meth:`PositTable.project` is elementwise and the scalings are
    per-segment, every output is bitwise identical to calling
    :func:`lp_quantize` pair by pair — the fast path changes wall
    clock, never bits.

    >>> import numpy as np
    >>> a, b = np.array([0.3, -1.7]), np.array([[2.5]])
    >>> p = LPParams(n=6, es=1, rs=3, sf=0.25)
    >>> outs = lp_quantize_many([a, b], [p, p])
    >>> all(np.array_equal(o, lp_quantize(x, p), equal_nan=True)
    ...     for o, x in zip(outs, [a, b]))
    True
    """
    if len(tensors) != len(params_list):
        raise ValueError(
            f"got {len(tensors)} tensors for {len(params_list)} params"
        )
    results: list[np.ndarray | None] = [None] * len(tensors)
    groups: dict[tuple[int, int, int], list[int]] = {}
    for idx, params in enumerate(params_list):
        p = params.clamped()
        groups.setdefault((p.n, p.es_eff, p.rs_eff), []).append(idx)
    for (n, es, rs), idxs in groups.items():
        if len(idxs) == 1:
            i = idxs[0]
            results[i] = lp_quantize(tensors[i], params_list[i])
            continue
        table = _lp_positive_table(n, es, rs)
        xs = [np.asarray(tensors[i], dtype=np.float64) for i in idxs]
        scaled = np.concatenate(
            [(np.abs(x) * np.exp2(params_list[i].sf)).ravel()
             for x, i in zip(xs, idxs)]
        )
        flat = np.zeros(scaled.shape, dtype=np.float64)
        pos = scaled > 0  # excludes zeros and NaNs
        flat[pos] = table.values[table.project(scaled[pos])]
        offset = 0
        for x, i in zip(xs, idxs):
            seg = flat[offset:offset + x.size].reshape(x.shape)
            offset += x.size
            # zeros stay exactly 0.0 under the scalar multiply, so
            # applying 2^-sf to the whole segment matches lp_quantize
            # applying it to the positive lookups only
            out = seg * np.exp2(-params_list[i].sf)
            out = np.where(x < 0, -out, out)
            out[np.isnan(x)] = np.nan
            results[i] = out
    return results  # type: ignore[return-value]


@dataclass(frozen=True)
class LogPositFormat(BitLevelFormat):
    """LP⟨n, es, rs, sf⟩ as a :class:`NumberFormat`."""

    params: LPParams

    @staticmethod
    def make(n: int, es: int, rs: int, sf: float = 0.0) -> "LogPositFormat":
        return LogPositFormat(LPParams(n=n, es=es, rs=rs, sf=sf))

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.params.n

    @property
    def name(self) -> str:
        p = self.params
        return f"lp<{p.n},{p.es},{p.rs},{p.sf:.4g}>"

    def encode(self, x: np.ndarray) -> np.ndarray:
        return lp_encode(x, self.params)

    def decode(self, pattern: np.ndarray) -> np.ndarray:
        return lp_decode(pattern, self.params)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        return lp_quantize(x, self.params)

    def dynamic_range(self) -> tuple[float, float]:
        p = self.params.clamped()
        values = _lp_positive_table(p.n, p.es_eff, p.rs_eff).values
        s = np.exp2(-p.sf)
        return float(values[0] * s), float(values[-1] * s)
