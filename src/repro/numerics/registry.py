"""Factory for building calibrated number formats by name.

Used by the Fig. 5(b) format-comparison experiment, where each format is
calibrated to the tensor being quantized (per-tensor scale/bias) and then
compared on per-layer RMSE.

Both lookup tables here are :mod:`repro.spec.registry` registries — the
``format_family`` registry behind :data:`FORMAT_FAMILIES` (calibrated
per-tensor constructors) and the ``format_parser`` registry behind
:func:`make_format` (compact spec-string parsers).  Registered extension
formats are accepted everywhere the built-ins are, and a JSON
:class:`~repro.spec.SearchSpec` can reference any of them by name.
"""

from __future__ import annotations

import numpy as np

from ..spec import registry as spec_registry
from .adaptivfloat import AdaptivFloatFormat
from .base import NumberFormat
from .flint import FlintFormat
from .intquant import IntFormat
from .lns import LNSFormat
from .logposit import LogPositFormat, LPParams
from .minifloat import MiniFloatFormat
from .posit import PositFormat

__all__ = ["make_format", "calibrated_format", "FORMAT_FAMILIES",
           "FORMAT_PARSERS", "tensor_log_center"]


#: spec-string kind -> parser; the ``format_parser`` registry of
#: :mod:`repro.spec.registry`, so extension formats can plug into
#: :func:`make_format` by registering a parser under their kind
FORMAT_PARSERS = spec_registry.registry("format_parser")


def _format_parser(kind: str, signature: str, min_args: int, max_args: int):
    """Register a :func:`make_format` parser with a declared arity.

    The registered wrapper turns truncated argument lists and
    unparsable numbers into ``ValueError``\\ s that name the full spec
    string and the expected signature — a malformed spec must never
    surface as a bare ``IndexError`` from deep inside a parser.
    """

    def decorate(fn):
        def parse(spec: str, args: list[str]) -> NumberFormat:
            if not min_args <= len(args) <= max_args:
                arity = (
                    str(min_args)
                    if min_args == max_args
                    else f"{min_args}..{max_args}"
                )
                raise ValueError(
                    f"malformed format spec {spec!r}: {kind!r} takes "
                    f"{arity} comma-separated argument(s) "
                    f"({kind}:{signature}), got {len(args)}"
                )
            try:
                return fn(args)
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"malformed format spec {spec!r} "
                    f"(expected {kind}:{signature}): {exc}"
                ) from None

        parse.signature = signature
        FORMAT_PARSERS.register(kind, parse)
        return fn

    return decorate


@_format_parser("lp", "n,es,rs[,sf]", 3, 4)
def _parse_lp(args: list[str]) -> NumberFormat:
    n, es, rs = (int(a) for a in args[:3])
    sf = float(args[3]) if len(args) > 3 else 0.0
    return LogPositFormat(LPParams(n=n, es=es, rs=rs, sf=sf))


@_format_parser("posit", "n,es", 2, 2)
def _parse_posit(args: list[str]) -> NumberFormat:
    return PositFormat(n=int(args[0]), es=int(args[1]))


@_format_parser("int", "n,scale", 2, 2)
def _parse_int(args: list[str]) -> NumberFormat:
    return IntFormat(n=int(args[0]), scale=float(args[1]))


@_format_parser("fp", "n,ebits", 2, 2)
def _parse_fp(args: list[str]) -> NumberFormat:
    return MiniFloatFormat(n=int(args[0]), ebits=int(args[1]))


@_format_parser("lns", "n,ibits[,bias]", 2, 3)
def _parse_lns(args: list[str]) -> NumberFormat:
    bias = float(args[2]) if len(args) > 2 else 0.0
    return LNSFormat(n=int(args[0]), ibits=int(args[1]), bias=bias)


@_format_parser("flint", "n[,scale]", 1, 2)
def _parse_flint(args: list[str]) -> NumberFormat:
    scale = float(args[1]) if len(args) > 1 else 1.0
    return FlintFormat(n=int(args[0]), scale=scale)


@_format_parser("afloat", "n,ebits,exp_bias", 3, 3)
def _parse_afloat(args: list[str]) -> NumberFormat:
    return AdaptivFloatFormat(
        n=int(args[0]), ebits=int(args[1]), exp_bias=int(args[2])
    )


def make_format(spec: str) -> NumberFormat:
    """Build a format from a compact spec string.

    Examples: ``"lp:8,2,3,0.5"``, ``"posit:8,1"``, ``"int:8,0.01"``,
    ``"fp:8,4"``, ``"lns:8,3"``, ``"flint:8"``, ``"afloat:8,4,7"``.

    Unknown kinds and malformed argument lists raise ``ValueError``
    naming the offending spec and the expected signature:

    >>> make_format("posit:8,1").name
    'posit<8,1>'
    >>> make_format("lp:8")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    ValueError: malformed format spec 'lp:8': 'lp' takes 3..4 ...
    >>> make_format("posit:")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    ValueError: malformed format spec 'posit:': 'posit' takes 2 ...
    """
    kind, _, rest = spec.partition(":")
    if kind not in FORMAT_PARSERS:
        raise ValueError(
            f"unknown format spec {spec!r}; known kinds: "
            f"{sorted(FORMAT_PARSERS)}"
        )
    args = [a for a in rest.split(",") if a]
    return FORMAT_PARSERS[kind](spec, args)


def tensor_log_center(x: np.ndarray) -> float:
    """Scale factor centering LP's peak-accuracy region on a tensor.

    The paper initializes ``sf`` from "the mean weight distribution of
    that layer" (Section 4, Step 1).  LP's value is ``2^(2^es·k − sf) ·
    2^ulfx`` (Eq. 1), so the region of maximum accuracy (k = 0) covers
    magnitudes around ``2^−sf``; centering it on the distribution means
    ``sf = −mean(log2 |x|)`` — the mean in the *log* domain, which is the
    natural domain of an LNS-fraction format.
    """
    mag = np.abs(np.asarray(x, dtype=np.float64))
    mag = mag[mag > 0]
    if mag.size == 0:
        return 0.0
    return float(-np.mean(np.log2(mag)))


def _calibrated_lp(x: np.ndarray, n: int) -> NumberFormat:
    """LP adapted to the tensor by a small ⟨es, rs, sf⟩ grid search.

    This mirrors the paper's Fig. 5(b) protocol, where LPQ searches the
    format parameters of *every* format family; for LP the searchable
    fields are ``es``, ``rs`` and ``sf`` (Section 3).  A coarse grid is
    enough to expose LP's distribution-adaptivity.
    """
    x = np.asarray(x, dtype=np.float64)
    sample = x.ravel()
    if sample.size > 4096:
        stride = sample.size // 4096 + 1
        sample = sample[::stride]
    center = tensor_log_center(sample)
    best: tuple[float, NumberFormat] | None = None
    for es in range(0, min(2, max(n - 3, 0)) + 1):
        for rs in range(2, max(n - 1, 2) + 1):
            for dsf in (-1.0, -0.5, 0.0, 0.5, 1.0):
                fmt = LogPositFormat(LPParams(n=n, es=es, rs=rs, sf=center + dsf))
                err = float(np.sqrt(np.mean((sample - fmt.quantize(sample)) ** 2)))
                if best is None or err < best[0]:
                    best = (err, fmt)
    assert best is not None
    return best[1]


#: name -> calibrated-constructor; each takes (tensor, n) and returns a
#: format adapted to that tensor, mirroring how each format family is used
#: in practice (per-tensor scales for int/flint, bias for adaptivfloat...).
#: This is the ``format_family`` registry of :mod:`repro.spec.registry`
#: itself (a Mapping), so dict-style call sites keep working while
#: registered extension families are accepted everywhere the built-ins are.
FORMAT_FAMILIES = spec_registry.registry("format_family")
for _name, _ctor in (
    ("int", lambda x, n: IntFormat.for_tensor(x, n)),
    ("float", lambda x, n: MiniFloatFormat(n=n, ebits=min(4, n - 2))),
    ("adaptivfloat", lambda x, n: AdaptivFloatFormat.for_tensor(x, n)),
    ("posit", lambda x, n: PositFormat(n=n, es=min(2, max(0, n - 3)))),
    ("lns", lambda x, n: LNSFormat.for_tensor(x, n)),
    ("flint", lambda x, n: FlintFormat.for_tensor(x, n)),
    ("lp", _calibrated_lp),
):
    FORMAT_FAMILIES.register(_name, _ctor)


def calibrated_format(family: str, x: np.ndarray, n: int) -> NumberFormat:
    """Return ``family``'s format calibrated to tensor ``x`` at width ``n``."""
    try:
        ctor = FORMAT_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown format family {family!r}; choose from {sorted(FORMAT_FAMILIES)}"
        ) from None
    return ctor(np.asarray(x, dtype=np.float64), n)
