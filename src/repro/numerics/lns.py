"""Base-2 Logarithmic Number System (LNS) with fixed-point exponents.

An LNS⟨n, ibits⟩ number is ``(-1)^s * 2^E`` where ``E`` is a signed
fixed-point value with ``ibits`` integer bits and ``n - 1 - ibits``
fraction bits.  A reserved pattern encodes zero.  LNS is one of LP's two
primitive data types (the other being posits): it has *flat* relative
accuracy across its whole dynamic range, whereas LP tapers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import NumberFormat

__all__ = ["LNSFormat"]


@dataclass(frozen=True)
class LNSFormat(NumberFormat):
    """Sign + fixed-point base-2 exponent; ``bias`` recenters the range."""

    n: int
    ibits: int
    bias: float = 0.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("LNS needs at least 2 bits (sign + exponent)")
        if not 0 <= self.ibits <= self.n - 1:
            raise ValueError(f"ibits must be in [0, {self.n - 1}]")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.n

    @property
    def name(self) -> str:
        return f"lns<{self.n},{self.ibits},{self.bias:.4g}>"

    @property
    def _fbits(self) -> int:
        return self.n - 1 - self.ibits

    @property
    def _step(self) -> float:
        return float(np.exp2(-self._fbits))

    def _exp_bounds(self) -> tuple[float, float]:
        """Representable exponent range [lo, hi] (two's-complement-style)."""
        half = float(np.exp2(self.ibits - 1)) if self.ibits > 0 else 0.5
        lo = -half + self.bias
        hi = half - self._step + self.bias
        return lo, hi

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        nz = x != 0
        lo, hi = self._exp_bounds()
        e = np.clip(np.log2(np.abs(x[nz])), lo, hi)
        eq = np.round((e - self.bias) / self._step) * self._step + self.bias
        out[nz] = np.sign(x[nz]) * np.exp2(eq)
        return out

    def dynamic_range(self) -> tuple[float, float]:
        lo, hi = self._exp_bounds()
        return float(np.exp2(lo)), float(np.exp2(hi))

    @staticmethod
    def for_tensor(x: np.ndarray, n: int, ibits: int | None = None) -> "LNSFormat":
        """Pick ``ibits``/``bias`` so the tensor's magnitudes are covered."""
        mag = np.abs(np.asarray(x, dtype=np.float64))
        mag = mag[mag > 0]
        if mag.size == 0:
            return LNSFormat(n=n, ibits=ibits if ibits is not None else (n - 1) // 2)
        span = float(np.log2(mag.max()) - np.log2(mag.min()))
        if ibits is None:
            ibits = int(np.clip(np.ceil(np.log2(max(span, 1.0))) + 1, 1, n - 1))
        center = float((np.log2(mag.max()) + np.log2(mag.min())) / 2.0)
        return LNSFormat(n=n, ibits=ibits, bias=center)
