"""AdaptivFloat (Tambe et al., DAC 2020) — the paper's float baseline.

AdaptivFloat is an ``n``-bit float whose *exponent bias* is chosen per
tensor so that the largest representable value just covers the tensor's
absolute maximum.  It adapts the dynamic-range *position* but — unlike LP —
cannot change the distribution *shape*: its relative accuracy is flat
(paper Fig. 1(b)), which is exactly the deficiency LP addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import NumberFormat
from .minifloat import MiniFloatFormat

__all__ = ["AdaptivFloatFormat"]


@dataclass(frozen=True)
class AdaptivFloatFormat(NumberFormat):
    """n-bit adaptive float with tensor-calibrated exponent bias."""

    n: int
    ebits: int
    exp_bias: int

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.n

    @property
    def name(self) -> str:
        return f"afloat<{self.n},e{self.ebits},b{self.exp_bias}>"

    def _inner(self) -> MiniFloatFormat:
        return MiniFloatFormat(n=self.n, ebits=self.ebits, bias=self.exp_bias)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        return self._inner().quantize(x)

    def dynamic_range(self) -> tuple[float, float]:
        return self._inner().dynamic_range()

    @staticmethod
    def for_tensor(
        x: np.ndarray, n: int, ebits: int | None = None
    ) -> "AdaptivFloatFormat":
        """Calibrate the exponent bias to the tensor (Tambe et al. §III).

        The bias is set so that ``maxval >= max|x|`` with the tightest
        possible margin, concentrating representable values on the
        tensor's actual range.
        """
        if ebits is None:
            # AdaptivFloat uses a small fixed exponent field; 4 bits for
            # n >= 6, shrinking for very narrow widths.
            ebits = int(np.clip(n - 2, 1, 4))
        mag = np.abs(np.asarray(x, dtype=np.float64))
        amax = float(mag.max()) if mag.size else 1.0
        if amax <= 0:
            amax = 1.0
        mbits = n - 1 - ebits
        # exponent of the top binade needed to cover amax
        e_top = int(np.floor(np.log2(amax / (2.0 - np.exp2(-mbits))))) + 1
        emax_code = (1 << ebits) - 1
        bias = emax_code - e_top
        return AdaptivFloatFormat(n=n, ebits=ebits, exp_bias=bias)
